// Tests for the observability subsystem: JSON writer escaping, sharded
// counter sums under parallel load, span nesting/ordering, run-report
// rendering, and the GORDER_OBS_DISABLED zero-overhead path (exercised
// by obs_disabled_test.cpp in the same binary).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "obs/expo.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/reqtrace.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace gorder::obs {
namespace {

/// Restores capture/enable state and the thread budget when a test exits;
/// span-dependent tests clear the record store so they see only their own.
class ObsGuard {
 public:
  ObsGuard() {
    SetEnabledForTest(true);
    StopCapture();
    ClearSpans();
  }
  ~ObsGuard() {
    StopCapture();
    ClearSpans();
    SetEnabledForTest(true);
    SetNumThreads(0);
  }
};

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  JsonWriter w;
  w.BeginObject();
  w.KV("k", std::string("a\"b\\c\n\t\r\b\f\x01z"));
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\n\\t\\r\\b\\f\\u0001z\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(JsonWriterTest, NestedStructuresGetCommasRight) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Int(1);
  w.Int(-2);
  w.EndArray();
  w.KV("b", true);
  w.Key("c");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":[1,-2],\"b\":true,\"c\":{}}");
}

TEST(MetricsTest, CounterSumsAcrossThreads) {
  ObsGuard guard;
  Counter& c = GetCounter("obs_test.parallel_adds");
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    c.Reset();
    constexpr std::size_t kItems = 10000;
    ParallelFor(0, kItems, 64, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) c.Add(1);
    });
    EXPECT_EQ(c.Value(), kItems) << "threads=" << threads;
  }
}

TEST(MetricsTest, DisabledCounterDropsAdds) {
  ObsGuard guard;
  Counter& c = GetCounter("obs_test.gated_adds");
  c.Reset();
  SetEnabledForTest(false);
  c.Add(100);
  EXPECT_EQ(c.Value(), 0u);
  SetEnabledForTest(true);
  c.Add(3);
  EXPECT_EQ(c.Value(), 3u);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  ObsGuard guard;
  Histogram& h = GetHistogram("obs_test.hist");
  h.Reset();
  h.Observe(0);   // bucket 0
  h.Observe(1);   // bucket 1
  h.Observe(5);   // bucket 3
  h.Observe(5);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 11u);
  auto buckets = h.Buckets();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[3], 2u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  ObsGuard guard;
  Gauge& g = GetGauge("obs_test.gauge");
  g.Set(7);
  g.Set(-3);
  EXPECT_EQ(g.Value(), -3);
}

TEST(SpanTest, NotRecordedWithoutCapture) {
  ObsGuard guard;
  { Span s("obs_test.uncaptured"); }
  EXPECT_TRUE(SnapshotSpans().empty());
}

TEST(SpanTest, NestsAndOrders) {
  ObsGuard guard;
  StartCapture();
  {
    Span outer("outer");
    { Span inner1("inner1"); }
    {
      Span inner2("inner2");
      { Span leaf("leaf"); }
    }
  }
  auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 4u);
  // Records are appended in construction order.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner1");
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[3].name, "leaf");
  EXPECT_EQ(spans[0].parent, kNoParent);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[3].parent, 2);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[3].depth, 2);
  for (const auto& s : spans) {
    EXPECT_GE(s.dur_s, 0.0) << s.name << " left open";
    if (s.parent != kNoParent) {
      EXPECT_GE(s.start_s, spans[s.parent].start_s);
    }
  }
}

TEST(SpanTest, CapturesCounterDeltas) {
  ObsGuard guard;
  Counter& c = GetCounter("obs_test.span_delta");
  c.Reset();
  StartCapture();
  {
    Span s("delta");
    c.Add(42);
  }
  auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 1u);
  bool found = false;
  for (const auto& [name, delta] : spans[0].counter_deltas) {
    if (name == "obs_test.span_delta") {
      EXPECT_EQ(delta, 42u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpanTest, ChromeTraceRendersEvents) {
  ObsGuard guard;
  StartCapture();
  {
    Span outer("trace \"outer\"");
    Span inner("inner");
  }
  std::string json = RenderChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("trace \\\"outer\\\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
}

TEST(ReportTest, RendersSchemaAndEnv) {
  ObsGuard guard;
  StartCapture();
  {
    Span s("report_phase");
    GetCounter("obs_test.report_counter").Add(5);
  }
  std::string json = RenderRunReportJson();
  EXPECT_NE(json.find("\"schema\":\"gorder-run-report\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"env\":"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_model\""), std::string::npos);
  EXPECT_NE(json.find("\"report_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.report_counter\""), std::string::npos);
}

TEST(ReportTest, EnvFingerprintIsPopulated) {
  EnvFingerprint env = CollectEnvFingerprint();
  EXPECT_FALSE(env.cpu_model.empty());
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.os.empty());
  EXPECT_GE(env.threads, 1);
}

// Regression: the trace writer used to fopen the final path directly, so
// a crash or full disk left a truncated JSON file a viewer chokes on. It
// now stages through util/atomic_file — success leaves exactly the final
// file, failure leaves nothing at the final path and no staging debris.
TEST(TraceWriterTest, WritesAtomicallyAndFailsClean) {
  ObsGuard guard;
  StartCapture();
  { Span s("atomic_phase"); }
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "gorder_obs_atomic_trace_test";
  fs::create_directories(dir);
  const std::string trace = (dir / "trace.json").string();
  EXPECT_TRUE(WriteChromeTrace(trace));
  EXPECT_TRUE(fs::exists(trace));
  std::ifstream in(trace);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);

  // Failure path: the final path is an existing directory, so the
  // commit rename cannot succeed. The old content situation (nothing)
  // must be preserved and the staging file cleaned up.
  const std::string blocked = (dir / "blocked").string();
  fs::create_directories(blocked);
  EXPECT_FALSE(WriteChromeTrace(blocked + "/"));
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "staging debris: " << entry.path();
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(WindowedHistogramTest, QuantilesOverOneSlot) {
  ObsGuard guard;
  WindowedHistogram h("obs_test.win_one_slot");
  // 900 fast (bucket 3: values 4..7), 90 medium (bucket 7: 64..127),
  // 10 slow (bucket 11: 1024..2047) — a classic latency shape.
  for (int i = 0; i < 900; ++i) h.RecordAtTick(5, 100);
  for (int i = 0; i < 90; ++i) h.RecordAtTick(100, 100);
  for (int i = 0; i < 10; ++i) h.RecordAtTick(2000, 100);
  WindowSnapshot w = h.SnapshotAtTick(kWindowSecondsShort, 100);
  EXPECT_EQ(w.count, 1000u);
  EXPECT_EQ(w.sum, 900u * 5 + 90u * 100 + 10u * 2000);
  EXPECT_EQ(w.p50, WindowedHistogram::BucketUpperBound(3));   // 7
  EXPECT_EQ(w.p99, WindowedHistogram::BucketUpperBound(7));   // 127
  EXPECT_EQ(w.p999, WindowedHistogram::BucketUpperBound(11));  // 2047
  EXPECT_LE(w.p50, w.p99);
  EXPECT_LE(w.p99, w.p999);
}

TEST(WindowedHistogramTest, OldSlotsAgeOutOfTheWindow) {
  ObsGuard guard;
  WindowedHistogram h("obs_test.win_aging");
  h.RecordAtTick(1000, 10);  // 50s..55s on the slot clock
  h.RecordAtTick(1, 20);     // 100s..105s
  // At tick 20, the 10s window covers ticks {19, 20} — only the fresh
  // record; the 60s window covers ticks {9..20} — both.
  WindowSnapshot short_w = h.SnapshotAtTick(kWindowSecondsShort, 20);
  EXPECT_EQ(short_w.count, 1u);
  EXPECT_EQ(short_w.sum, 1u);
  WindowSnapshot long_w = h.SnapshotAtTick(kWindowSecondsLong, 20);
  EXPECT_EQ(long_w.count, 2u);
  EXPECT_EQ(long_w.sum, 1001u);
  // Far in the future both are empty.
  EXPECT_EQ(h.SnapshotAtTick(kWindowSecondsLong, 1000).count, 0u);
}

TEST(WindowedHistogramTest, WrappedSlotIsRecycledNotDoubleCounted) {
  ObsGuard guard;
  WindowedHistogram h("obs_test.win_recycle");
  // Tick 5 and tick 5 + kNumSlots map to the same ring slot.
  h.RecordAtTick(7, 5);
  const std::int64_t wrapped = 5 + WindowedHistogram::kNumSlots;
  h.RecordAtTick(9, wrapped);
  WindowSnapshot w = h.SnapshotAtTick(kWindowSecondsShort, wrapped);
  EXPECT_EQ(w.count, 1u);
  EXPECT_EQ(w.sum, 9u);
}

TEST(WindowedHistogramTest, DisabledRecordIsDropped) {
  ObsGuard guard;
  WindowedHistogram& h = GetWindowedHistogram("obs_test.win_gated");
  h.ResetForTest();
  SetEnabledForTest(false);
  h.Record(42);
  SetEnabledForTest(true);
  EXPECT_EQ(h.Snapshot(kWindowSecondsLong).count, 0u);
}

TEST(WindowedHistogramTest, DumpIsSortedAndCoversRegistry) {
  ObsGuard guard;
  ResetAllWindowed();
  GetWindowedHistogram("obs_test.win_dump_b").Record(3);
  GetWindowedHistogram("obs_test.win_dump_a").Record(5);
  std::vector<WindowedDump> dump = DumpWindowed();
  std::size_t a = dump.size(), b = dump.size();
  for (std::size_t i = 0; i < dump.size(); ++i) {
    EXPECT_TRUE(i == 0 || dump[i - 1].name < dump[i].name) << "unsorted";
    if (dump[i].name == "obs_test.win_dump_a") a = i;
    if (dump[i].name == "obs_test.win_dump_b") b = i;
  }
  ASSERT_LT(a, dump.size());
  ASSERT_LT(b, dump.size());
  EXPECT_EQ(dump[a].short_window.count, 1u);
  EXPECT_EQ(dump[a].long_window.sum, 5u);
  EXPECT_EQ(dump[b].long_window.sum, 3u);
}

TEST(PrometheusTest, NamesAreMechanicallySanitised) {
  EXPECT_EQ(PrometheusName("serve.requests"), "gorder_serve_requests");
  EXPECT_EQ(PrometheusName("serve.req_us.bfs"), "gorder_serve_req_us_bfs");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "gorder_weird_name_with_spaces");
}

TEST(PrometheusTest, RendersCounterHistogramAndWindowSeries) {
  ObsGuard guard;
  GetCounter("obs_test.prom_counter").Reset();
  GetCounter("obs_test.prom_counter").Add(7);
  Histogram& h = GetHistogram("obs_test.prom_hist");
  h.Reset();
  h.Observe(1);
  h.Observe(100);
  GetWindowedHistogram("obs_test.prom_win").ResetForTest();
  GetWindowedHistogram("obs_test.prom_win").Record(50);
  std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE gorder_obs_test_prom_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("gorder_obs_test_prom_counter_total 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gorder_obs_test_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gorder_obs_test_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gorder_obs_test_prom_hist_count 2"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "gorder_obs_test_prom_win{window=\"10s\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("gorder_obs_test_prom_win_count{window=\"60s\"} 1"),
            std::string::npos);
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", std::string("a\"b\\c\nz"));
  w.KV("big", std::uint64_t{18446744073709551615ull});
  w.KV("neg", std::int64_t{-42});
  w.KV("pi", 3.25);
  w.KV("yes", true);
  w.Key("list");
  w.BeginArray();
  w.Uint(1);
  w.Null();
  w.EndArray();
  w.EndObject();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(w.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.Find("name")->str, "a\"b\\c\nz");
  EXPECT_TRUE(doc.Find("big")->is_uint);
  EXPECT_EQ(doc.U64("big"), 18446744073709551615ull);
  EXPECT_EQ(doc.Find("neg")->num, -42.0);
  EXPECT_EQ(doc.Find("pi")->num, 3.25);
  EXPECT_TRUE(doc.Find("yes")->boolean);
  ASSERT_EQ(doc.Find("list")->array.size(), 2u);
  EXPECT_EQ(doc.Find("list")->array[0].uint, 1u);
  EXPECT_EQ(doc.Find("list")->array[1].kind, JsonValue::Kind::kNull);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  JsonValue doc;
  std::string error;
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}",
                          "\"unterminated", "01", "1e", "tru", "{} extra",
                          "\x01"}) {
    EXPECT_FALSE(ParseJson(bad, &doc, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  // Depth bomb: 100 nested arrays exceeds the parser's depth cap.
  std::string deep(100, '[');
  deep.append(100, ']');
  EXPECT_FALSE(ParseJson(deep, &doc, &error));
}

TEST(JsonParseTest, DecodesUnicodeEscapesToUtf8) {
  JsonValue doc;
  std::string error;
  // BMP code points: ASCII, 2-byte and 3-byte UTF-8, both hex cases.
  ASSERT_TRUE(ParseJson("\"\\u0041\\u00e9\\u20AC\"", &doc, &error)) << error;
  EXPECT_EQ(doc.str, "A\xC3\xA9\xE2\x82\xAC");  // A é €
  // Control characters round-trip through the writer's \u00XX form.
  ASSERT_TRUE(ParseJson("\"\\u0000\\u001f\"", &doc, &error)) << error;
  EXPECT_EQ(doc.str, std::string("\x00\x1F", 2));
  // Surrogate pair: U+1F600 (emoji, astral plane) -> 4-byte UTF-8.
  ASSERT_TRUE(ParseJson("\"\\uD83D\\uDE00\"", &doc, &error)) << error;
  EXPECT_EQ(doc.str, "\xF0\x9F\x98\x80");
  // Highest pair: U+10FFFF.
  ASSERT_TRUE(ParseJson("\"\\uDBFF\\uDFFF\"", &doc, &error)) << error;
  EXPECT_EQ(doc.str, "\xF4\x8F\xBF\xBF");
}

TEST(JsonParseTest, RejectsBadUnicodeEscapes) {
  JsonValue doc;
  std::string error;
  for (const char* bad : {
           "\"\\u12\"",            // truncated hex
           "\"\\u12G4\"",          // non-hex digit
           "\"\\uD800\"",          // high surrogate, nothing after
           "\"\\uD800x\"",         // high surrogate, no \u follow-up
           "\"\\uD800\\n\"",       // high surrogate, wrong escape
           "\"\\uD800\\u0041\"",   // high surrogate + non-surrogate
           "\"\\uD800\\uD800\"",   // high + high
           "\"\\uDC00\"",          // lone low surrogate
           "\"\\uDFFF\\uDC00\"",   // low first
       }) {
    EXPECT_FALSE(ParseJson(bad, &doc, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ReqTraceRingTest, SnapshotReturnsNewestFirst) {
  ReqTraceRing ring;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ReqTraceRecord rec;
    rec.trace_id = i;
    rec.exec_us = i * 10;
    ring.Push(rec);
  }
  EXPECT_EQ(ring.TotalPushed(), 5u);
  std::vector<ReqTraceRecord> recent = ring.SnapshotRecent(3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].trace_id, 5u);
  EXPECT_EQ(recent[1].trace_id, 4u);
  EXPECT_EQ(recent[2].trace_id, 3u);
}

TEST(ReqTraceRingTest, WrapsAndKeepsOnlyTheLastCapacity) {
  ReqTraceRing ring;
  const std::uint64_t total = ReqTraceRing::kCapacity + 10;
  for (std::uint64_t i = 0; i < total; ++i) {
    ReqTraceRecord rec;
    rec.trace_id = i;
    ring.Push(rec);
  }
  EXPECT_EQ(ring.TotalPushed(), total);
  std::vector<ReqTraceRecord> recent =
      ring.SnapshotRecent(ReqTraceRing::kCapacity * 2);
  ASSERT_EQ(recent.size(), ReqTraceRing::kCapacity);
  EXPECT_EQ(recent.front().trace_id, total - 1);
  EXPECT_EQ(recent.back().trace_id, total - ReqTraceRing::kCapacity);
}

TEST(ReportTest, WindowsSectionCarriesSchemaMinor3) {
  ObsGuard guard;
  ResetAllWindowed();
  GetWindowedHistogram("obs_test.report_win").Record(9);
  std::string json = RenderRunReportJson();
  EXPECT_NE(json.find("\"schema_minor\":3"), std::string::npos);
  EXPECT_NE(json.find("\"windows\":"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.report_win\""), std::string::npos);
  EXPECT_NE(json.find("\"10s\""), std::string::npos);
  EXPECT_NE(json.find("\"60s\""), std::string::npos);
  // And the document as a whole parses with our own parser.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  const JsonValue* windows = doc.Find("windows");
  ASSERT_NE(windows, nullptr);
  const JsonValue* win = windows->Find("obs_test.report_win");
  ASSERT_NE(win, nullptr);
  EXPECT_EQ(win->Find("60s")->U64("count"), 1u);
}

}  // namespace
}  // namespace gorder::obs

// Defined in obs_disabled_test.cpp (compiled with GORDER_OBS_DISABLED).
namespace gorder::obs_disabled_probe {
void RunDisabledProbe();
}

namespace gorder::obs {
namespace {

TEST(DisabledBuildTest, MacrosCompileOutCompletely) {
  obs_disabled_probe::RunDisabledProbe();
  // The probe used GORDER_OBS_COUNTER/ADD/SPAN/WINDOWED/WRECORD under
  // GORDER_OBS_DISABLED; if those expanded to real registrations the
  // metrics would exist here.
  EXPECT_EQ(FindCounter("obs_disabled_test.counter"), nullptr);
  EXPECT_EQ(FindWindowedHistogram("obs_disabled_test.windowed"), nullptr);
}

}  // namespace
}  // namespace gorder::obs
