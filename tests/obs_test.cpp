// Tests for the observability subsystem: JSON writer escaping, sharded
// counter sums under parallel load, span nesting/ordering, run-report
// rendering, and the GORDER_OBS_DISABLED zero-overhead path (exercised
// by obs_disabled_test.cpp in the same binary).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace gorder::obs {
namespace {

/// Restores capture/enable state and the thread budget when a test exits;
/// span-dependent tests clear the record store so they see only their own.
class ObsGuard {
 public:
  ObsGuard() {
    SetEnabledForTest(true);
    StopCapture();
    ClearSpans();
  }
  ~ObsGuard() {
    StopCapture();
    ClearSpans();
    SetEnabledForTest(true);
    SetNumThreads(0);
  }
};

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  JsonWriter w;
  w.BeginObject();
  w.KV("k", std::string("a\"b\\c\n\t\r\b\f\x01z"));
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\n\\t\\r\\b\\f\\u0001z\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(JsonWriterTest, NestedStructuresGetCommasRight) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Int(1);
  w.Int(-2);
  w.EndArray();
  w.KV("b", true);
  w.Key("c");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":[1,-2],\"b\":true,\"c\":{}}");
}

TEST(MetricsTest, CounterSumsAcrossThreads) {
  ObsGuard guard;
  Counter& c = GetCounter("obs_test.parallel_adds");
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    c.Reset();
    constexpr std::size_t kItems = 10000;
    ParallelFor(0, kItems, 64, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) c.Add(1);
    });
    EXPECT_EQ(c.Value(), kItems) << "threads=" << threads;
  }
}

TEST(MetricsTest, DisabledCounterDropsAdds) {
  ObsGuard guard;
  Counter& c = GetCounter("obs_test.gated_adds");
  c.Reset();
  SetEnabledForTest(false);
  c.Add(100);
  EXPECT_EQ(c.Value(), 0u);
  SetEnabledForTest(true);
  c.Add(3);
  EXPECT_EQ(c.Value(), 3u);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  ObsGuard guard;
  Histogram& h = GetHistogram("obs_test.hist");
  h.Reset();
  h.Observe(0);   // bucket 0
  h.Observe(1);   // bucket 1
  h.Observe(5);   // bucket 3
  h.Observe(5);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 11u);
  auto buckets = h.Buckets();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[3], 2u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  ObsGuard guard;
  Gauge& g = GetGauge("obs_test.gauge");
  g.Set(7);
  g.Set(-3);
  EXPECT_EQ(g.Value(), -3);
}

TEST(SpanTest, NotRecordedWithoutCapture) {
  ObsGuard guard;
  { Span s("obs_test.uncaptured"); }
  EXPECT_TRUE(SnapshotSpans().empty());
}

TEST(SpanTest, NestsAndOrders) {
  ObsGuard guard;
  StartCapture();
  {
    Span outer("outer");
    { Span inner1("inner1"); }
    {
      Span inner2("inner2");
      { Span leaf("leaf"); }
    }
  }
  auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 4u);
  // Records are appended in construction order.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner1");
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[3].name, "leaf");
  EXPECT_EQ(spans[0].parent, kNoParent);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[3].parent, 2);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[3].depth, 2);
  for (const auto& s : spans) {
    EXPECT_GE(s.dur_s, 0.0) << s.name << " left open";
    if (s.parent != kNoParent) {
      EXPECT_GE(s.start_s, spans[s.parent].start_s);
    }
  }
}

TEST(SpanTest, CapturesCounterDeltas) {
  ObsGuard guard;
  Counter& c = GetCounter("obs_test.span_delta");
  c.Reset();
  StartCapture();
  {
    Span s("delta");
    c.Add(42);
  }
  auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 1u);
  bool found = false;
  for (const auto& [name, delta] : spans[0].counter_deltas) {
    if (name == "obs_test.span_delta") {
      EXPECT_EQ(delta, 42u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpanTest, ChromeTraceRendersEvents) {
  ObsGuard guard;
  StartCapture();
  {
    Span outer("trace \"outer\"");
    Span inner("inner");
  }
  std::string json = RenderChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("trace \\\"outer\\\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
}

TEST(ReportTest, RendersSchemaAndEnv) {
  ObsGuard guard;
  StartCapture();
  {
    Span s("report_phase");
    GetCounter("obs_test.report_counter").Add(5);
  }
  std::string json = RenderRunReportJson();
  EXPECT_NE(json.find("\"schema\":\"gorder-run-report\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"env\":"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_model\""), std::string::npos);
  EXPECT_NE(json.find("\"report_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.report_counter\""), std::string::npos);
}

TEST(ReportTest, EnvFingerprintIsPopulated) {
  EnvFingerprint env = CollectEnvFingerprint();
  EXPECT_FALSE(env.cpu_model.empty());
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.os.empty());
  EXPECT_GE(env.threads, 1);
}

// Regression: the trace writer used to fopen the final path directly, so
// a crash or full disk left a truncated JSON file a viewer chokes on. It
// now stages through util/atomic_file — success leaves exactly the final
// file, failure leaves nothing at the final path and no staging debris.
TEST(TraceWriterTest, WritesAtomicallyAndFailsClean) {
  ObsGuard guard;
  StartCapture();
  { Span s("atomic_phase"); }
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "gorder_obs_atomic_trace_test";
  fs::create_directories(dir);
  const std::string trace = (dir / "trace.json").string();
  EXPECT_TRUE(WriteChromeTrace(trace));
  EXPECT_TRUE(fs::exists(trace));
  std::ifstream in(trace);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);

  // Failure path: the final path is an existing directory, so the
  // commit rename cannot succeed. The old content situation (nothing)
  // must be preserved and the staging file cleaned up.
  const std::string blocked = (dir / "blocked").string();
  fs::create_directories(blocked);
  EXPECT_FALSE(WriteChromeTrace(blocked + "/"));
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "staging debris: " << entry.path();
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace gorder::obs

// Defined in obs_disabled_test.cpp (compiled with GORDER_OBS_DISABLED).
namespace gorder::obs_disabled_probe {
void RunDisabledProbe();
}

namespace gorder::obs {
namespace {

TEST(DisabledBuildTest, MacrosCompileOutCompletely) {
  obs_disabled_probe::RunDisabledProbe();
  // The probe used GORDER_OBS_COUNTER/ADD/SPAN under GORDER_OBS_DISABLED;
  // if those expanded to real registrations the counter would exist here.
  EXPECT_EQ(FindCounter("obs_disabled_test.counter"), nullptr);
}

}  // namespace
}  // namespace gorder::obs
