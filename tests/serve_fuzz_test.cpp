// Decoder-hardening fuzz for the gorderd wire protocol.
//
// Two layers:
//   1. Pure codec fuzz — random, truncated, bit-flipped and adversarial
//      frames through DecodeRequest/DecodeResponse. The contract under
//      attack: every outcome is a clean DecodeResult, declared sizes are
//      validated BEFORE any allocation (a hostile 4 GiB length prefix
//      must cost nothing), and no input reads out of bounds (the CI
//      fault-injection job runs this suite under ASan).
//   2. Live-socket torture — the same hostile byte streams against a
//      running Server: garbage frames, bad magic, wrong version, frames
//      truncated by disconnect, oversized declarations. After every
//      attack the server must still answer a fresh client's Ping.
//
// Determinism: all "random" bytes come from seeded Rng streams, so a
// failure reproduces from the seed logged in the assertion message.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder::serve {
namespace {

std::string RandomBytes(Rng& rng, std::size_t n) {
  std::string out(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(rng.Uniform(256));
  }
  return out;
}

/// Decode that must terminate with a sane (result, consumed) pair no
/// matter what the bytes are.
void DecodeMustBeSane(const std::string& frame, std::uint64_t seed) {
  Request req;
  std::string error;
  std::size_t consumed = 0;
  DecodeResult d =
      DecodeRequest(reinterpret_cast<const std::byte*>(frame.data()),
                    frame.size(), &consumed, &req, &error);
  EXPECT_LE(consumed, frame.size()) << "seed " << seed;
  if (d == DecodeResult::kOk) {
    EXPECT_GT(consumed, 0u) << "seed " << seed;
  }
  if (d == DecodeResult::kNeedMoreData || d == DecodeResult::kTooLarge) {
    EXPECT_EQ(consumed, 0u) << "seed " << seed;
  }

  ResponseHeader header;
  const std::byte* body = nullptr;
  std::size_t body_len = 0;
  consumed = 0;
  DecodeResult r =
      DecodeResponse(reinterpret_cast<const std::byte*>(frame.data()),
                     frame.size(), &consumed, &header, &body, &body_len,
                     &error);
  EXPECT_LE(consumed, frame.size()) << "seed " << seed;
  if (r == DecodeResult::kOk) {
    EXPECT_LE(body_len, consumed) << "seed " << seed;
  }
}

std::vector<Request> SampleRequests() {
  std::vector<Request> reqs;
  for (unsigned op = 1; op <= 10; ++op) {
    Request r;
    r.id = 0x1000 + op;
    r.opcode = static_cast<Opcode>(op);
    r.node = 3;
    r.k = 4;
    r.iterations = 10;
    r.method = "Gorder";
    r.seed = 7;
    r.num_nodes = 8;
    r.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    r.pack_path = "/tmp/x.gpack";
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(ServeFuzz, RandomFramesNeverMisbehave) {
  Rng rng(0xF00D);
  for (int iter = 0; iter < 60000; ++iter) {
    DecodeMustBeSane(RandomBytes(rng, rng.Uniform(80)), 0xF00D);
  }
}

TEST(ServeFuzz, RandomFramesWithPlausiblePrefixes) {
  // Random bodies behind a length prefix that matches the buffer, so the
  // decoder gets past framing and into the per-opcode body parsers.
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 60000; ++iter) {
    const std::size_t body = rng.Uniform(70);
    std::string frame;
    PutU32(&frame, static_cast<std::uint32_t>(body));
    frame += RandomBytes(rng, body);
    if (body >= kRequestPrefixBytes && rng.Uniform(2) == 0) {
      // Half the time, force a valid opcode and zero reserved so the
      // body parser itself is the thing being fuzzed.
      frame[12] = static_cast<char>(1 + rng.Uniform(10));
      frame[13] = 0;
      frame[14] = 0;
      frame[15] = 0;
    }
    DecodeMustBeSane(frame, 0xBEEF);
  }
}

TEST(ServeFuzz, EveryTruncationOfEveryOpcodeNeedsMoreData) {
  for (const Request& req : SampleRequests()) {
    std::string frame;
    AppendRequest(&frame, req);
    for (std::size_t n = 0; n < frame.size(); ++n) {
      Request out;
      std::string error;
      std::size_t consumed = 0;
      EXPECT_EQ(DecodeRequest(reinterpret_cast<const std::byte*>(frame.data()),
                              n, &consumed, &out, &error),
                DecodeResult::kNeedMoreData)
          << OpcodeName(req.opcode) << " truncated to " << n;
    }
  }
}

TEST(ServeFuzz, SingleByteCorruptionsNeverMisbehave) {
  Rng rng(0xC0FFEE);
  for (const Request& req : SampleRequests()) {
    std::string frame;
    AppendRequest(&frame, req);
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      for (int trial = 0; trial < 4; ++trial) {
        std::string mutated = frame;
        mutated[pos] ^= static_cast<char>(1 + rng.Uniform(255));
        DecodeMustBeSane(mutated, 0xC0FFEE);
      }
    }
  }
}

TEST(ServeFuzz, HostileLengthPrefixCostsNothing) {
  // Declared lengths way past the cap, with and without payload bytes
  // behind them: kTooLarge before any allocation, zero consumed.
  for (std::uint32_t declared :
       {kMaxPayloadBytes + 1, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    for (std::size_t behind : {std::size_t{0}, std::size_t{64}}) {
      std::string frame;
      PutU32(&frame, declared);
      frame.append(behind, '\x42');
      Request out;
      std::string error;
      std::size_t consumed = 0;
      EXPECT_EQ(DecodeRequest(reinterpret_cast<const std::byte*>(frame.data()),
                              frame.size(), &consumed, &out, &error),
                DecodeResult::kTooLarge)
          << declared;
      EXPECT_EQ(consumed, 0u);
    }
  }
  // At the cap exactly the declaration is legal framing (just incomplete
  // here) — the boundary must not be off by one.
  std::string frame;
  PutU32(&frame, kMaxPayloadBytes);
  Request out;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeRequest(reinterpret_cast<const std::byte*>(frame.data()),
                          frame.size(), &consumed, &out, &error),
            DecodeResult::kNeedMoreData);
}

TEST(ServeFuzz, AdversarialOrderBodies) {
  // Inner size fields (method_len, num_edges) claiming more than the
  // payload carries must fail by arithmetic, not by reading past the
  // buffer or allocating the claimed amount.
  Request base;
  base.id = 1;
  base.opcode = Opcode::kOrder;
  base.method = "BOBA";
  base.num_nodes = 4;
  base.edges = {{0, 1}};
  std::string frame;
  AppendRequest(&frame, base);

  // method_len = 0xFFFF with only a handful of bytes behind it.
  {
    std::string mutated = frame;
    mutated[16] = '\xFF';
    mutated[17] = '\xFF';
    Request out;
    std::string error;
    std::size_t consumed = 0;
    EXPECT_EQ(
        DecodeRequest(reinterpret_cast<const std::byte*>(mutated.data()),
                      mutated.size(), &consumed, &out, &error),
        DecodeResult::kBadFrame);
  }
  // num_edges = huge (would be a multi-GiB reserve if trusted).
  {
    std::string mutated = frame;
    const std::size_t num_edges_at = mutated.size() - sizeof(Edge) - 4;
    mutated[num_edges_at + 0] = '\xFF';
    mutated[num_edges_at + 1] = '\xFF';
    mutated[num_edges_at + 2] = '\xFF';
    mutated[num_edges_at + 3] = '\x7F';
    Request out;
    std::string error;
    std::size_t consumed = 0;
    EXPECT_EQ(
        DecodeRequest(reinterpret_cast<const std::byte*>(mutated.data()),
                      mutated.size(), &consumed, &out, &error),
        DecodeResult::kBadFrame);
  }
}

TEST(ServeFuzz, ResponseDecoderSurvivesTruncationAndCorruption) {
  std::string frame;
  AppendResponse(&frame, {42, Status::kOk, 3}, std::string(33, 'z'));
  Rng rng(0xABCD);
  for (std::size_t n = 0; n < frame.size(); ++n) {
    ResponseHeader header;
    const std::byte* body = nullptr;
    std::size_t body_len = 0;
    std::string error;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeResponse(reinterpret_cast<const std::byte*>(frame.data()),
                             n, &consumed, &header, &body, &body_len, &error),
              DecodeResult::kNeedMoreData);
    std::string mutated = frame;
    mutated[n] ^= static_cast<char>(1 + rng.Uniform(255));
    DecodeMustBeSane(mutated, 0xABCD);
  }
}

// ---- Admin HTTP parser fuzz (pure function; ASan job hammers this) ----

TEST(AdminHttpFuzz, RandomBytesNeverMisbehave) {
  Rng rng(0xAD317);
  for (int iter = 0; iter < 60000; ++iter) {
    const std::string data = RandomBytes(rng, rng.Uniform(96));
    AdminRequest req;
    const AdminParse p = ParseAdminRequest(data, &req);
    if (p == AdminParse::kOk) {
      // A parsed request always carries a sane method and a /-rooted path.
      EXPECT_FALSE(req.method.empty()) << "iter " << iter;
      EXPECT_FALSE(req.path.empty()) << "iter " << iter;
      EXPECT_EQ(req.path[0], '/') << "iter " << iter;
    }
  }
}

TEST(AdminHttpFuzz, EveryPrefixOfAValidRequestNeedsMore) {
  const std::string request =
      "GET /metrics HTTP/1.0\r\nHost: x\r\nAccept: */*\r\n\r\n";
  for (std::size_t n = 0; n < request.size(); ++n) {
    AdminRequest req;
    EXPECT_EQ(ParseAdminRequest(request.substr(0, n), &req),
              AdminParse::kNeedMore)
        << "prefix " << n;
  }
  AdminRequest req;
  ASSERT_EQ(ParseAdminRequest(request, &req), AdminParse::kOk);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
}

TEST(AdminHttpFuzz, OversizedHeadIsRejectedAtTheCap) {
  // No blank line within the cap: must turn into kBad, not kNeedMore
  // (kNeedMore would let a hostile peer grow the buffer forever).
  std::string runaway = "GET /";
  runaway.append(kMaxAdminRequestBytes, 'a');
  AdminRequest req;
  EXPECT_EQ(ParseAdminRequest(runaway, &req), AdminParse::kBad);
}

TEST(AdminHttpFuzz, MalformedRequestLinesAreBad) {
  for (const char* bad :
       {"\r\n\r\n",                        // empty request line
        "GET\r\n\r\n",                     // no path
        "GET  HTTP/1.0\r\n\r\n",           // empty path
        "GET metrics HTTP/1.0\r\n\r\n",    // path not /-rooted
        "GET /a\x01/b HTTP/1.0\r\n\r\n",   // control char in path
        "G\x7f T / HTTP/1.0\r\n\r\n",      // control char in method
        "GET / FTP/9\r\n\r\n"}) {          // not an HTTP version
    AdminRequest req;
    EXPECT_EQ(ParseAdminRequest(bad, &req), AdminParse::kBad) << bad;
  }
  // Bare-LF termination (curl never sends it, netcat users do) is fine.
  AdminRequest req;
  EXPECT_EQ(ParseAdminRequest("GET /healthz HTTP/1.1\n\n", &req),
            AdminParse::kOk);
  EXPECT_EQ(req.path, "/healthz");
}

TEST(AdminHttpFuzz, RouterAlwaysAnswersWellFormedHttp) {
  AdminHandlers handlers;
  handlers.metrics_text = [] { return std::string("m 1\n"); };
  handlers.healthz_text = [] { return std::string("ok\n"); };
  handlers.tracez_json = [] { return std::string("{}"); };
  Rng rng(0x404);
  for (int iter = 0; iter < 20000; ++iter) {
    AdminRequest req;
    req.method = iter % 3 == 0 ? "GET" : RandomBytes(rng, rng.Uniform(8));
    req.path = "/" + RandomBytes(rng, rng.Uniform(24));
    const std::string response = HandleAdminRequest(req, handlers);
    EXPECT_EQ(response.rfind("HTTP/1.0 ", 0), 0u) << "iter " << iter;
    EXPECT_NE(response.find("Content-Length: "), std::string::npos);
    EXPECT_NE(response.find("Connection: close"), std::string::npos);
  }
  // The three real routes, plus query-string stripping.
  AdminRequest req;
  req.method = "GET";
  for (const char* path : {"/metrics", "/healthz", "/tracez",
                           "/metrics?format=prometheus"}) {
    req.path = path;
    EXPECT_NE(HandleAdminRequest(req, handlers).find("200"),
              std::string::npos)
        << path;
  }
}

// ---- Live-socket torture ----

class ServeSocketFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sock_path_ = "/tmp/gorder_serve_fuzz_" + std::to_string(::getpid()) +
                 ".sock";
    std::vector<Edge> edges;
    for (NodeId v = 1; v < 32; ++v) edges.push_back({v / 2, v});
    ServerOptions opts;
    opts.listen.is_unix = true;
    opts.listen.path = sock_path_;
    opts.serve_threads = 2;
    // A random frame can decode as a well-formed kShutdown or kSwapPack;
    // the torture server must not honour either.
    opts.allow_shutdown = false;
    opts.allow_swap = false;
    server_ = std::make_unique<Server>(Graph::FromEdges(32, edges), opts);
    IoResult r = server_->Start();
    ASSERT_TRUE(r.ok) << r.error;
  }

  void TearDown() override { server_->Stop(); }

  /// The liveness probe every attack must leave intact.
  void ExpectServerStillServes() {
    Client client;
    IoResult r = client.Connect(Address(), 10.0);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(client.Ping().ok());
  }

  util::NetAddress Address() const {
    util::NetAddress a;
    a.is_unix = true;
    a.path = sock_path_;
    return a;
  }

  /// Raw connect + client hello; returns the socket with the ack already
  /// consumed and validated as `accepted`.
  util::Socket RawHandshake(bool expect_accepted = true) {
    util::Socket s;
    IoResult r = util::ConnectSocket(Address(), &s, 10.0);
    EXPECT_TRUE(r.ok) << r.error;
    std::string hello;
    AppendHandshake(&hello);
    EXPECT_TRUE(util::WriteFull(s, hello.data(), hello.size()).ok);
    char ack[kHandshakeBytes];
    EXPECT_TRUE(util::ReadFull(s, ack, sizeof(ack)).ok);
    std::uint32_t version = 0;
    std::memcpy(&version, ack + 4, 4);
    EXPECT_EQ(version != 0, expect_accepted);
    return s;
  }

  /// Reads one length-prefixed response frame; returns false on EOF.
  bool ReadResponseFrame(const util::Socket& s, ResponseHeader* header) {
    std::uint32_t len = 0;
    bool clean_eof = false;
    if (!util::ReadFull(s, &len, 4, &clean_eof).ok) return false;
    EXPECT_LE(len, kMaxPayloadBytes);
    std::string payload(len, '\0');
    if (!util::ReadFull(s, payload.data(), len).ok) return false;
    std::string full;
    PutU32(&full, len);
    full += payload;
    const std::byte* body = nullptr;
    std::size_t body_len = 0;
    std::string error;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeResponse(reinterpret_cast<const std::byte*>(full.data()),
                             full.size(), &consumed, header, &body, &body_len,
                             &error),
              DecodeResult::kOk)
        << error;
    return true;
  }

  std::string sock_path_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeSocketFuzzTest, BadMagicIsRejectedAndRetired) {
  util::Socket s;
  ASSERT_TRUE(util::ConnectSocket(Address(), &s, 10.0).ok);
  std::string hello;
  PutU32(&hello, 0x58585858u);  // "XXXX", not the magic
  PutU32(&hello, kProtocolVersion);
  ASSERT_TRUE(util::WriteFull(s, hello.data(), hello.size()).ok);
  char ack[kHandshakeBytes];
  ASSERT_TRUE(util::ReadFull(s, ack, sizeof(ack)).ok);
  std::uint32_t version = 1;
  std::memcpy(&version, ack + 4, 4);
  EXPECT_EQ(version, 0u);  // rejected
  // The server closes after a rejection.
  char byte;
  bool clean_eof = false;
  EXPECT_FALSE(util::ReadFull(s, &byte, 1, &clean_eof).ok);
  ExpectServerStillServes();
}

TEST_F(ServeSocketFuzzTest, WrongVersionIsRejected) {
  util::Socket s;
  ASSERT_TRUE(util::ConnectSocket(Address(), &s, 10.0).ok);
  std::string hello;
  PutU32(&hello, kWireMagic);
  PutU32(&hello, 99);
  ASSERT_TRUE(util::WriteFull(s, hello.data(), hello.size()).ok);
  char ack[kHandshakeBytes];
  ASSERT_TRUE(util::ReadFull(s, ack, sizeof(ack)).ok);
  std::uint32_t version = 1;
  std::memcpy(&version, ack + 4, 4);
  EXPECT_EQ(version, 0u);
  ExpectServerStillServes();
}

TEST_F(ServeSocketFuzzTest, DisconnectMidHandshakeAndMidFrame) {
  {  // half a hello, then gone
    util::Socket s;
    ASSERT_TRUE(util::ConnectSocket(Address(), &s, 10.0).ok);
    ASSERT_TRUE(util::WriteFull(s, "GR", 2).ok);
  }
  {  // handshake, then half a length prefix, then gone
    util::Socket s = RawHandshake();
    ASSERT_TRUE(util::WriteFull(s, "\x0c\x00", 2).ok);
  }
  {  // handshake, full prefix, partial payload, then gone
    util::Socket s = RawHandshake();
    std::string partial;
    PutU32(&partial, 12);
    partial += "\x01\x02\x03";
    ASSERT_TRUE(util::WriteFull(s, partial.data(), partial.size()).ok);
  }
  ExpectServerStillServes();
}

TEST_F(ServeSocketFuzzTest, OversizedDeclarationGetsTooLargeThenClose) {
  util::Socket s = RawHandshake();
  std::string frame;
  PutU32(&frame, kMaxPayloadBytes + 1);
  ASSERT_TRUE(util::WriteFull(s, frame.data(), frame.size()).ok);
  ResponseHeader header;
  ASSERT_TRUE(ReadResponseFrame(s, &header));
  EXPECT_EQ(header.status, Status::kTooLarge);
  EXPECT_EQ(header.id, 0u);  // no id was readable
  // Framing is untrusted now: the server closes the connection.
  char byte;
  EXPECT_FALSE(util::ReadFull(s, &byte, 1).ok);
  ExpectServerStillServes();
}

TEST_F(ServeSocketFuzzTest, RandomFrameStormGetsOneReplyPerFrame) {
  Rng rng(0xDEAD);
  util::Socket s = RawHandshake();
  int survived = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t body = rng.Uniform(48);
    std::string frame;
    PutU32(&frame, static_cast<std::uint32_t>(body));
    frame += RandomBytes(rng, body);
    if (body >= kRequestPrefixBytes && rng.Uniform(2) == 0) {
      frame[12] = static_cast<char>(1 + rng.Uniform(10));
      frame[13] = 0;
      frame[14] = 0;
      frame[15] = 0;
    }
    if (!util::WriteFull(s, frame.data(), frame.size()).ok) break;
    ResponseHeader header;
    if (!ReadResponseFrame(s, &header)) break;  // server chose to retire us
    ++survived;
  }
  // Most random frames are answerable errors (kBadFrame / kBadOpcode /
  // kBadRequest), so the stream should survive a decent while.
  EXPECT_GT(survived, 0);
  ExpectServerStillServes();
}

TEST_F(ServeSocketFuzzTest, GarbageFloodViaClientCall) {
  // Client::Call pushes pre-framed bytes and decodes whatever comes
  // back; the server must answer every syntactically framed request.
  Client client;
  ASSERT_TRUE(client.Connect(Address(), 10.0).ok);
  Rng rng(0x5EED);
  for (int iter = 0; iter < 200; ++iter) {
    std::string frame;
    const std::size_t body =
        kRequestPrefixBytes + rng.Uniform(16);  // framed, hostile inside
    PutU32(&frame, static_cast<std::uint32_t>(body));
    frame += RandomBytes(rng, body);
    RawReply reply = client.Call(frame);
    if (!client.connected()) break;  // clean retirement is acceptable
    EXPECT_NE(reply.status, Status::kOk);  // nothing random should succeed
  }
  ExpectServerStillServes();
}

}  // namespace
}  // namespace gorder::serve
