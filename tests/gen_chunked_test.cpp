// Chunked streaming generation (gen/chunked.h, DESIGN.md §19) and the
// generator correctness fixes that rode along with it:
//   - the windowed parallel driver is bit-identical to the retained
//     serial reference for every generator family, at any thread count
//     (the differential contract);
//   - ER/BA/planted-partition output is pinned by golden fingerprints
//     at 1/2/8 threads, so a silent change to any PRNG derivation or
//     sampling step fails loudly;
//   - the in-memory ErdosRenyi feasibility guards use exact integer
//     arithmetic (the old double comparison was lossy above 2^53) and
//     fire *before* any allocation;
//   - BarabasiAlbert redraws from the attachment mass and dedups per
//     source, so realised out-degrees equal out_k exactly;
//   - the chunked stream packs through extmem::BuildPackFromEdgeStream
//     to byte-identical .gpack files at 1/2/8 threads.

#include "gen/chunked.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "extmem/ext_csr.h"
#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "util/parallel.h"

namespace gorder {
namespace {

namespace fs = std::filesystem;

struct ThreadGuard {
  explicit ThreadGuard(int n) : saved(NumThreads()) { SetNumThreads(n); }
  ~ThreadGuard() { SetNumThreads(saved); }
  int saved;
};

std::uint64_t FnvEdges(const std::vector<Edge>& edges) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Edge& e : edges) {
    h ^= e.src;
    h *= 1099511628211ULL;
    h ^= e.dst;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Drains a stream into one flat edge vector, recording per-call chunk
/// sizes.
struct Collected {
  std::vector<Edge> edges;
  std::vector<std::size_t> chunk_sizes;
};

template <typename StreamFn>
Collected Drain(const StreamFn& stream) {
  Collected c;
  IoResult r = stream([&](const Edge* e, std::size_t count) {
    c.edges.insert(c.edges.end(), e, e + count);
    c.chunk_sizes.push_back(count);
    return IoResult::Ok();
  });
  EXPECT_TRUE(r.ok) << r.error;
  return c;
}

gen::RmatParams SmallRmat() {
  gen::RmatParams p;
  p.scale = 10;
  p.num_edges = 20000;
  return p;
}

std::string TempPath(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string("gorder_genchunk_") +
                     info->test_suite_name() + "_" + info->name() + "_" + tag;
  for (char& c : name) {
    if (c == '/' || c == '\\') c = '_';
  }
  return (fs::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------
// Parallel driver vs serial reference: the differential contract. The
// windowed parallel path must deliver the exact same chunk sequence as
// the retained straight-line serial loop, for every generator family,
// at any thread count.
// ---------------------------------------------------------------------

TEST(ChunkedDifferentialTest, RmatParallelMatchesSerialReference) {
  const gen::RmatParams p = SmallRmat();
  gen::ChunkedOptions serial;
  serial.chunk_edges = 1024;
  serial.serial_reference = true;
  const Collected ref = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamRmat(p, 42, serial, sink);
  });
  for (int threads : {2, 8}) {
    ThreadGuard guard(threads);
    gen::ChunkedOptions par;
    par.chunk_edges = 1024;
    const Collected got = Drain([&](const gen::EdgeSink& sink) {
      return gen::StreamRmat(p, 42, par, sink);
    });
    EXPECT_EQ(ref.edges, got.edges) << threads << " threads";
    EXPECT_EQ(ref.chunk_sizes, got.chunk_sizes) << threads << " threads";
  }
}

TEST(ChunkedDifferentialTest, ErdosRenyiParallelMatchesSerialReference) {
  gen::ChunkedOptions serial;
  serial.chunk_edges = 512;
  serial.serial_reference = true;
  const Collected ref = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamErdosRenyi(300, 9000, 7, serial, sink);
  });
  for (int threads : {2, 8}) {
    ThreadGuard guard(threads);
    gen::ChunkedOptions par;
    par.chunk_edges = 512;
    const Collected got = Drain([&](const gen::EdgeSink& sink) {
      return gen::StreamErdosRenyi(300, 9000, 7, par, sink);
    });
    EXPECT_EQ(ref.edges, got.edges) << threads << " threads";
  }
}

TEST(ChunkedDifferentialTest, BarabasiAlbertParallelMatchesSerialReference) {
  gen::ChunkedOptions serial;
  serial.chunk_edges = 700;  // deliberately not a multiple of out_k
  serial.serial_reference = true;
  const Collected ref = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamBarabasiAlbert(4000, 5, 11, serial, sink);
  });
  for (int threads : {2, 8}) {
    ThreadGuard guard(threads);
    gen::ChunkedOptions par;
    par.chunk_edges = 700;
    const Collected got = Drain([&](const gen::EdgeSink& sink) {
      return gen::StreamBarabasiAlbert(4000, 5, 11, par, sink);
    });
    EXPECT_EQ(ref.edges, got.edges) << threads << " threads";
  }
}

TEST(ChunkedDifferentialTest, BackCompatOverloadMatchesOptionsPath) {
  const gen::RmatParams p = SmallRmat();
  gen::ChunkedOptions options;
  options.chunk_edges = 2048;
  const Collected a = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamRmat(p, 9, options, sink);
  });
  const Collected b = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamRmat(p, 9, std::size_t{2048}, sink);
  });
  EXPECT_EQ(a.edges, b.edges);
}

TEST(ChunkedDifferentialTest, WindowSizeIsInvisibleInOutput) {
  ThreadGuard guard(4);
  gen::ChunkedOptions small_window;
  small_window.chunk_edges = 256;
  small_window.window_chunks = 2;
  gen::ChunkedOptions big_window;
  big_window.chunk_edges = 256;
  big_window.window_chunks = 64;
  const Collected a = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamErdosRenyi(100, 5000, 3, small_window, sink);
  });
  const Collected b = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamErdosRenyi(100, 5000, 3, big_window, sink);
  });
  EXPECT_EQ(a.edges, b.edges);
}

// ---------------------------------------------------------------------
// Determinism goldens at 1/2/8 threads. The pinned constants freeze the
// full derivation chain (MixParamsSeed -> ChunkSeed -> per-chunk PRNG /
// hash draws); any change to it is a format break for regenerated
// datasets and must be deliberate.
// ---------------------------------------------------------------------

TEST(ChunkedGoldenTest, ErdosRenyiStreamFingerprint) {
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    gen::ChunkedOptions options;
    options.chunk_edges = 1024;
    const Collected c = Drain([&](const gen::EdgeSink& sink) {
      return gen::StreamErdosRenyi(500, 20000, 42, options, sink);
    });
    EXPECT_EQ(c.edges.size(), 20000u);
    EXPECT_EQ(FnvEdges(c.edges), 0xb2643d62a61f76f9ULL)
        << threads << " threads";
  }
}

TEST(ChunkedGoldenTest, BarabasiAlbertStreamFingerprint) {
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    gen::ChunkedOptions options;
    options.chunk_edges = 1024;
    const Collected c = Drain([&](const gen::EdgeSink& sink) {
      return gen::StreamBarabasiAlbert(5000, 4, 42, options, sink);
    });
    EXPECT_EQ(FnvEdges(c.edges), 0x6a6235d5ac060c44ULL)
        << threads << " threads";
  }
}

TEST(ChunkedGoldenTest, RmatStreamFingerprint) {
  const gen::RmatParams p = SmallRmat();
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    gen::ChunkedOptions options;
    options.chunk_edges = 1024;
    const Collected c = Drain([&](const gen::EdgeSink& sink) {
      return gen::StreamRmat(p, 42, options, sink);
    });
    EXPECT_EQ(FnvEdges(c.edges), 0xcc3c209a28e29127ULL)
        << threads << " threads";
  }
}

TEST(ChunkedGoldenTest, PlantedPartitionDatasetFingerprint) {
  // The planted-partition stand-in (pokec) generates serially; the graph
  // build and crawl relabel behind MakeDataset use the shared pool, so
  // pinning the result at 1/2/8 threads guards the whole path.
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    Graph g = gen::MakeDataset("pokec", 0.05, 42);
    EXPECT_EQ(FnvEdges(g.ToEdges()), 0x02f7d122cf003fdaULL)
        << threads << " threads";
  }
}

TEST(ChunkedGoldenTest, BarabasiAlbertInMemoryFingerprint) {
  // Pins the *fixed* in-memory BA output (resample-from-mass + per-round
  // dedup). A change to the sampling loop shows up here before it shows
  // up as a silently different benchmark graph.
  Rng rng(42);
  Graph g = gen::BarabasiAlbert(600, 4, rng);
  EXPECT_EQ(FnvEdges(g.ToEdges()), 0x243a76b6a64175c9ULL);
}

// ---------------------------------------------------------------------
// ER chunk semantics: exact partition of the sample count, exact
// self-loop avoidance (no rejection loop to grind at the ceiling).
// ---------------------------------------------------------------------

TEST(StreamErdosRenyiTest, ExactPartitionAcrossChunks) {
  gen::ChunkedOptions options;
  options.chunk_edges = 1024;
  const Collected c = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamErdosRenyi(60, 2500, 5, options, sink);
  });
  // Every attempt emits exactly one edge: chunks are full-size except
  // the tail, and the total is exactly m.
  ASSERT_EQ(c.chunk_sizes.size(), 3u);
  EXPECT_EQ(c.chunk_sizes[0], 1024u);
  EXPECT_EQ(c.chunk_sizes[1], 1024u);
  EXPECT_EQ(c.chunk_sizes[2], 452u);
  EXPECT_EQ(c.edges.size(), 2500u);
  for (const Edge& e : c.edges) {
    EXPECT_LT(e.src, 60u);
    EXPECT_LT(e.dst, 60u);
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(StreamErdosRenyiTest, DensityCeilingDoesNotGrind) {
  // m = n*(n-1) exactly — the densest request the model admits. The
  // rejection-free sampler emits all of them in one pass; the old
  // rejection-into-dedup-set approach would coupon-collector forever
  // here.
  const NodeId n = 64;
  const EdgeId m = 64 * 63;
  gen::ChunkedOptions options;
  options.chunk_edges = 512;
  const Collected c = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamErdosRenyi(n, m, 17, options, sink);
  });
  EXPECT_EQ(c.edges.size(), static_cast<std::size_t>(m));
  for (const Edge& e : c.edges) EXPECT_NE(e.src, e.dst);
}

TEST(StreamErdosRenyiTest, InfeasibleRequestAborts) {
  gen::ChunkedOptions options;
  EXPECT_DEATH(
      {
        IoResult r = gen::StreamErdosRenyi(
            64, 64 * 63 + 1, 1, options,
            [](const Edge*, std::size_t) { return IoResult::Ok(); });
        (void)r;
      },
      "m exceeds n");
}

// ---------------------------------------------------------------------
// In-memory ErdosRenyi guards: exact integer feasibility, ordered
// before any allocation.
// ---------------------------------------------------------------------

TEST(ErdosRenyiGuardTest, ExactIntegerFeasibilityAboveDoublePrecision) {
  // n*(n-1) = 9999999900000000 > 2^53: IEEE doubles cannot represent
  // max+1 distinctly, so the old `double(m) <= double(n)*(n-1)` check
  // accepted it and fell through to the allocation and rejection loop.
  const NodeId n = 100000000;
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1);
  ASSERT_EQ(static_cast<double>(max_edges + 1),
            static_cast<double>(max_edges))
      << "test premise: max+1 must collapse onto max in double";
  EXPECT_DEATH(
      {
        Rng rng(1);
        Graph g = gen::ErdosRenyi(n, max_edges + 1, rng);
        (void)g;
      },
      "m exceeds n");
}

TEST(ErdosRenyiGuardTest, DenseRegimeSamplesComplementExactly) {
  // Above half the edge space rejection sampling would grind (coupon
  // collector), so the generator switches to complement sampling:
  // exact edge count, no self-loops, and it terminates promptly even
  // at the density ceiling.
  Rng rng(7);
  Graph dense = gen::ErdosRenyi(100, 6000, rng);  // max/2 = 4950 < 6000
  EXPECT_EQ(dense.NumEdges(), 6000u);
  for (NodeId v = 0; v < dense.NumNodes(); ++v) {
    for (NodeId w : dense.OutNeighbors(v)) EXPECT_NE(v, w);
  }
  // m == n*(n-1): the complete directed graph, zero holes to sample.
  Graph full = gen::ErdosRenyi(30, 30 * 29, rng);
  EXPECT_EQ(full.NumEdges(), 30u * 29u);
  // Just past the sparse/dense switch: still exact.
  Graph boundary = gen::ErdosRenyi(10, 46, rng);  // max = 90, half = 45
  EXPECT_EQ(boundary.NumEdges(), 46u);
}

TEST(ErdosRenyiGuardTest, GuardsFireBeforeReserve) {
  // Regression for the unbounded `seen.reserve(m * 2)`: an absurd m
  // must die on the feasibility CHECK (clean abort with its message),
  // not inside the allocator. The CHECK text in the death output is the
  // proof the guard ran first.
  EXPECT_DEATH(
      {
        Rng rng(1);
        Graph g = gen::ErdosRenyi(1u << 16, EdgeId{1} << 60, rng);
        (void)g;
      },
      "m exceeds n");
}

// ---------------------------------------------------------------------
// BarabasiAlbert fix: redraws come from the attachment mass (not a
// uniform fallback) and are deduped per round, so realised out-degrees
// are exact.
// ---------------------------------------------------------------------

TEST(BarabasiAlbertTest, OutDegreesExactlyOutK) {
  Rng rng(3);
  const NodeId n = 500, k = 5;
  Graph g = gen::BarabasiAlbert(n, k, rng);
  // Builder dedup removes nothing: every node emitted k distinct
  // non-self targets. (Before the fix, duplicate parallel edges were
  // silently dedupped and out-degrees undershot k.)
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(g.OutDegree(v), k) << "node " << v;
    EXPECT_FALSE(g.HasEdge(v, v));
  }
  // Every node (core included) emits exactly k surviving edges.
  EXPECT_EQ(g.NumEdges(), static_cast<EdgeId>(n) * k);
}

TEST(StreamBarabasiAlbertTest, SkewedInDegrees) {
  gen::ChunkedOptions options;
  options.chunk_edges = 4096;
  const Collected c = Drain([&](const gen::EdgeSink& sink) {
    return gen::StreamBarabasiAlbert(20000, 4, 3, options, sink);
  });
  Graph::Builder builder(20000);
  for (const Edge& e : c.edges) builder.AddEdge(e.src, e.dst);
  Graph g = builder.Build();
  GraphStats s = ComputeStats(g);
  // Preferential attachment: the biggest hub collects far more than the
  // average in-degree (~4).
  EXPECT_GT(s.max_in_degree, 40u);
}

TEST(StreamBarabasiAlbertTest, TargetChainTerminatesAndIsPure) {
  // The hash-resolved Batagelj-Brandes chain must terminate (every odd
  // draw strictly decreases the edge index) and be a pure function of
  // (stream_seed, out_k, edge_index).
  for (std::uint64_t i : {0ull, 1ull, 17ull, 999ull, 123456ull}) {
    const NodeId a = gen::BarabasiAlbertTarget(42, 4, i);
    const NodeId b = gen::BarabasiAlbertTarget(42, 4, i);
    EXPECT_EQ(a, b);
    EXPECT_LE(a, static_cast<NodeId>(i / 4));  // target precedes source
  }
}

// ---------------------------------------------------------------------
// Driver behaviour: sink errors stop the stream at the failing chunk.
// ---------------------------------------------------------------------

TEST(ChunkedDriverTest, ParallelStopsAtFirstSinkError) {
  ThreadGuard guard(8);
  gen::ChunkedOptions options;
  options.chunk_edges = 256;  // many chunks, several windows
  int calls = 0;
  IoResult r = gen::StreamErdosRenyi(
      200, 10000, 1, options, [&](const Edge*, std::size_t) {
        if (++calls == 2) return IoResult::Error("sink full");
        return IoResult::Ok();
      });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "sink full");
  // Delivery is in ascending chunk order from the calling thread, so
  // the count is exact even though later chunks were already generated.
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------
// Huge-tier registry: stream-only specs, deterministic StreamDataset,
// pack bit-identity through the extmem sink adapter.
// ---------------------------------------------------------------------

TEST(HugeDatasetTest, RegistryIsTieredAndStreamOnly) {
  for (const auto& spec : gen::HugeDatasets()) {
    EXPECT_EQ(spec.tier, gen::DatasetTier::kHuge) << spec.name;
    EXPECT_NE(gen::FindDatasetSpec(spec.name), nullptr) << spec.name;
  }
  // Standard names never resolve to huge specs and vice versa.
  EXPECT_EQ(gen::FindDatasetSpec("rmat-huge")->tier, gen::DatasetTier::kHuge);
  EXPECT_EQ(gen::FindDatasetSpec("pokec")->tier, gen::DatasetTier::kStandard);
  EXPECT_DEATH(
      {
        Graph g = gen::MakeDataset("rmat-huge", 0.001, 42);
        (void)g;
      },
      "stream-only");
}

TEST(HugeDatasetTest, StreamDatasetDeterministicAcrossThreads) {
  gen::ChunkedOptions options;
  options.chunk_edges = 2048;
  std::uint64_t first_hash = 0;
  NodeId first_nodes = 0;
  for (int threads : {1, 8}) {
    ThreadGuard guard(threads);
    NodeId nodes = 0;
    const Collected c = Drain([&](const gen::EdgeSink& sink) {
      return gen::StreamDataset("er-huge", 1e-5, 42, options, sink, &nodes);
    });
    EXPECT_GT(nodes, 0u);
    EXPECT_FALSE(c.edges.empty());
    if (threads == 1) {
      first_hash = FnvEdges(c.edges);
      first_nodes = nodes;
    } else {
      EXPECT_EQ(FnvEdges(c.edges), first_hash);
      EXPECT_EQ(nodes, first_nodes);
    }
  }
}

TEST(HugeDatasetTest, PackBitIdenticalAcrossThreadCounts) {
  const gen::RmatParams p = SmallRmat();
  extmem::ExtmemOptions ext;
  ext.mem_budget_bytes = 1 << 20;  // force multi-run external sorts
  std::string reference;
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    TempFile pack(TempPath("t" + std::to_string(threads) + ".gpack"));
    gen::ChunkedOptions options;
    options.chunk_edges = 512;
    IoResult r = extmem::BuildPackFromEdgeStream(
        [&](const gen::EdgeSink& sink) {
          return gen::StreamRmat(p, 42, options, sink);
        },
        /*reserve_nodes=*/NodeId{1} << p.scale, pack.path, ext);
    ASSERT_TRUE(r.ok) << r.error;
    const std::string bytes = ReadAll(pack.path);
    ASSERT_FALSE(bytes.empty());
    if (threads == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace gorder
