// End-to-end pipeline tests: generate a dataset stand-in, compute every
// ordering, relabel, run the full workload battery, and check global
// invariants across the whole grid — a miniature of the Figure 5
// experiment with correctness assertions instead of timings.

#include <gtest/gtest.h>

#include <map>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

class PipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineTest, FullGridConsistent) {
  Graph g = gen::MakeDataset(GetParam(), 0.03);
  auto config = harness::MakeDefaultConfig(g, /*num_diam_sources=*/3);
  config.pagerank_iterations = 3;
  auto identity = IdentityPermutation(g.NumNodes());

  // Reference checksums on the original numbering.
  std::map<harness::Workload, std::uint64_t> reference;
  for (harness::Workload w : harness::AllWorkloads()) {
    reference[w] = harness::RunWorkload(g, w, config, identity);
  }

  order::OrderingParams params;
  params.sa_steps = 500;
  for (order::Method m : order::AllMethods()) {
    auto perm = order::ComputeOrdering(g, m, params);
    CheckPermutation(perm, g.NumNodes());
    Graph h = g.Relabel(perm);
    EXPECT_EQ(h.NumEdges(), g.NumEdges()) << order::MethodName(m);

    // Order-invariant workloads must agree exactly with the reference.
    for (harness::Workload w :
         {harness::Workload::kNq, harness::Workload::kScc,
          harness::Workload::kSp, harness::Workload::kKcore,
          harness::Workload::kDiam}) {
      EXPECT_EQ(harness::RunWorkload(h, w, config, perm), reference[w])
          << order::MethodName(m) << "/" << harness::WorkloadName(w);
    }
    // Order-sensitive workloads still have structural invariants.
    auto bfs = algo::BfsForest(h);
    EXPECT_EQ(bfs.num_reached, g.NumNodes()) << order::MethodName(m);
    auto dfs = algo::DfsForest(h);
    EXPECT_EQ(dfs.num_reached, g.NumNodes()) << order::MethodName(m);
    auto ds = algo::DominatingSet(h);
    EXPECT_TRUE(algo::IsDominatingSet(h, ds.in_set)) << order::MethodName(m);
    auto pr = algo::PageRank(h, 3);
    EXPECT_NEAR(pr.total_mass, 1.0, 1e-9) << order::MethodName(m);
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, PipelineTest,
                         ::testing::Values("epinion", "wiki", "pokec"));

TEST(CacheImprovementTest, GorderBeatsRandomOnMissRate) {
  // The paper's central claim, in miniature: for PageRank, Gorder's
  // numbering must produce a lower simulated L1 miss rate than Random,
  // and no more memory traffic than Original.
  // Scale 0.8 puts the per-node PageRank state (~8 B/node) well past the
  // scaled hierarchy's 256 KiB L3, the regime where ordering decides how
  // much traffic reaches memory — the paper's operating point.
  Graph g = gen::MakeDataset("wiki", 0.8);
  auto config = harness::MakeDefaultConfig(g);
  config.pagerank_iterations = 2;

  auto miss_rate = [&](order::Method m) {
    auto perm = order::ComputeOrdering(g, m, {});
    Graph h = g.Relabel(perm);
    cachesim::CacheHierarchy caches(
        cachesim::CacheHierarchyConfig::ScaledBench());
    harness::RunWorkloadTraced(h, harness::Workload::kPr, config, perm,
                               caches);
    return caches.stats();
  };

  auto gorder_stats = miss_rate(order::Method::kGorder);
  auto random_stats = miss_rate(order::Method::kRandom);
  auto original_stats = miss_rate(order::Method::kOriginal);

  // Same logical work => same number of references (paper Table 3's
  // observation that L1-refs barely move across orderings).
  EXPECT_NEAR(static_cast<double>(gorder_stats.l1_refs),
              static_cast<double>(random_stats.l1_refs),
              0.02 * random_stats.l1_refs);
  EXPECT_LT(gorder_stats.L1MissRate(), random_stats.L1MissRate());
  EXPECT_LT(gorder_stats.OverallMissRate(), random_stats.OverallMissRate());
  EXPECT_LE(gorder_stats.L1MissRate(), original_stats.L1MissRate() * 1.05);
}

TEST(EndToEndIoTest, OrderPersistAndReload) {
  // Generate -> order -> relabel -> write -> read -> identical results.
  Graph g = gen::MakeDataset("epinion", 0.02);
  auto perm = order::ComputeOrdering(g, order::Method::kGorder, {});
  Graph h = g.Relabel(perm);
  std::string path = std::string(::testing::TempDir()) + "/pipeline.bin";
  ASSERT_TRUE(WriteBinary(path, h).ok);
  Graph reloaded;
  ASSERT_TRUE(ReadBinary(path, &reloaded).ok);
  EXPECT_EQ(algo::Nq(h).checksum, algo::Nq(reloaded).checksum);
  EXPECT_EQ(algo::KCore(h).max_core, algo::KCore(reloaded).max_core);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gorder
