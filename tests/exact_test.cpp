// Empirical validation of the paper's theory: the window greedy is a
// 1/(2w)-approximation of the optimal F. For w = 1 the optimum is
// computable exactly (max-weight Hamiltonian path DP), so we check the
// 1/2 bound — and that the greedy is in practice far closer.

#include "order/exact.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/stats.h"
#include "order/gorder.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

TEST(PairScoreTest, CountsEdgesAndCommonInNeighbors) {
  // 0 <-> 1, both pointed at by 2 and 3.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 0}, {2, 0}, {2, 1}, {3, 0},
                                 {3, 1}});
  EXPECT_EQ(PairScore(g, 0, 1), 4u);  // Sn = 2, Ss = |{2,3}| = 2
  EXPECT_EQ(PairScore(g, 0, 1), PairScore(g, 1, 0));
  EXPECT_EQ(PairScore(g, 2, 3), 0u);
}

TEST(ExactOptimumTest, PathGraphOptimumIsPathOrder) {
  // A directed path: optimal w=1 arrangement keeps consecutive nodes
  // adjacent, scoring Sn = 1 per edge.
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 8; ++v) edges.push_back({v, v + 1});
  Graph g = Graph::FromEdges(8, std::move(edges));
  EXPECT_EQ(ExactWindowOneOptimum(g), 7u);
  EXPECT_EQ(GorderScore(g, 1), 7u);  // identity is already optimal
}

TEST(ExactOptimumTest, MatchesBruteForceOnTinyGraphs) {
  Rng rng(41);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = gen::ErdosRenyi(7, 14 + trial * 3, rng);
    std::uint64_t brute = 0;
    std::vector<NodeId> perm = IdentityPermutation(7);
    std::sort(perm.begin(), perm.end());
    do {
      brute = std::max(brute, GorderScoreUnderPermutation(g, perm, 1));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(ExactWindowOneOptimum(g), brute) << "trial " << trial;
  }
}

class ApproximationBoundTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproximationBoundTest, GreedyWithinHalfOfOptimumAtWindowOne) {
  Rng rng(GetParam());
  NodeId n = 12 + static_cast<NodeId>(rng.Uniform(5));
  Graph g = gen::CopyingModel(n, 3, 0.6, rng);
  std::uint64_t opt = ExactWindowOneOptimum(g);
  OrderingParams params;
  params.window = 1;
  auto perm = GorderOrder(g, params);
  std::uint64_t greedy = GorderScoreUnderPermutation(g, perm, 1);
  // The theorem guarantees greedy >= opt / 2 at w = 1.
  EXPECT_GE(greedy * 2, opt) << "greedy " << greedy << " opt " << opt;
  EXPECT_LE(greedy, opt);  // sanity: optimum really is an upper bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationBoundTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56, 57, 58));

}  // namespace
}  // namespace gorder::order
