#include "order/unit_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

TEST(UnitHeapTest, InitialStateAllZero) {
  UnitHeap h(5);
  EXPECT_EQ(h.size(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(h.Contains(v));
    EXPECT_EQ(h.KeyOf(v), 0);
  }
}

TEST(UnitHeapTest, ExtractMaxReturnsHighestKey) {
  UnitHeap h(4);
  h.Increment(2);
  h.Increment(2);
  h.Increment(1);
  EXPECT_EQ(h.ExtractMax(), 2u);
  EXPECT_EQ(h.ExtractMax(), 1u);
  EXPECT_EQ(h.size(), 2u);
}

TEST(UnitHeapTest, DecrementLowersPriority) {
  UnitHeap h(3);
  h.Increment(0);
  h.Increment(1);
  h.Increment(1);
  h.Decrement(1);
  h.Decrement(1);
  EXPECT_EQ(h.ExtractMax(), 0u);
}

TEST(UnitHeapTest, RemoveExcludesNode) {
  UnitHeap h(3);
  h.Increment(2);
  h.Remove(2);
  EXPECT_FALSE(h.Contains(2));
  NodeId v = h.ExtractMax();
  EXPECT_NE(v, 2u);
  EXPECT_EQ(h.size(), 1u);
}

TEST(UnitHeapTest, ExtractFromEmptyReturnsInvalid) {
  UnitHeap h(1);
  EXPECT_EQ(h.ExtractMax(), 0u);
  EXPECT_EQ(h.ExtractMax(), kInvalidNode);
  EXPECT_TRUE(h.empty());
}

TEST(UnitHeapTest, KeyPersistsAfterExtraction) {
  // SlashBurn relies on reading the key of a just-extracted node.
  UnitHeap h(2);
  h.Increment(1);
  NodeId v = h.ExtractMax();
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(h.KeyOf(1), 1);
}

TEST(UnitHeapTest, ManyIncrementsGrowBuckets) {
  UnitHeap h(2);
  for (int i = 0; i < 1000; ++i) h.Increment(1);
  EXPECT_EQ(h.KeyOf(1), 1000);
  EXPECT_EQ(h.ExtractMax(), 1u);
}

TEST(UnitHeapTest, DegenerateStarExtractionAvoidsTopRescan) {
  // Regression for the O(n * K) degenerate case a star graph triggers:
  // one hub pumped to key K, then n leaves at key 0. An ExtractMax that
  // rescans the bucket array from a stale top pointer pays ~K/64 words
  // on *every* leaf extraction; the two-level occupancy bitmap pays the
  // drop from K once and then serves each leaf in O(1). The
  // unit_heap.scan_words counter is the observable.
  const bool was_enabled = obs::Enabled();
  obs::SetEnabledForTest(true);
  obs::Counter& scans = obs::GetCounter("unit_heap.scan_words");
  const std::uint64_t before = scans.Value();
  const NodeId n = 4096;
  const std::int32_t hub_key = 1 << 17;
  {
    UnitHeap h(n);
    ASSERT_TRUE(h.BumpBy(0, hub_key));
    EXPECT_EQ(h.ExtractMax(), 0u);
    for (NodeId i = 1; i < n; ++i) {
      ASSERT_NE(h.ExtractMax(), kInvalidNode);
    }
    h.FlushObsCounters();
  }
  const std::uint64_t scanned = scans.Value() - before;
  // A per-extract rescan would cost at least n * hub_key / 64 = 8M
  // words here; the bitmap descent costs a few words per extraction.
  EXPECT_LT(scanned, 20u * n);
  obs::SetEnabledForTest(was_enabled);
}

// Property test: a long random op sequence against a naive reference.
class UnitHeapRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnitHeapRandomTest, MatchesReferenceImplementation) {
  const NodeId n = 64;
  UnitHeap heap(n);
  std::vector<int> ref_key(n, 0);
  std::vector<bool> present(n, true);
  NodeId present_count = n;
  Rng rng(GetParam());

  for (int step = 0; step < 20000; ++step) {
    int op = static_cast<int>(rng.Uniform(10));
    if (op < 4) {  // increment random present node
      if (present_count == 0) continue;
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.Uniform(n));
      } while (!present[v]);
      heap.Increment(v);
      ++ref_key[v];
    } else if (op < 7) {  // decrement if key > 0
      if (present_count == 0) continue;
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.Uniform(n));
      } while (!present[v]);
      if (ref_key[v] == 0) continue;
      heap.Decrement(v);
      --ref_key[v];
    } else if (op < 9) {  // extract max
      NodeId v = heap.ExtractMax();
      if (present_count == 0) {
        EXPECT_EQ(v, kInvalidNode);
        continue;
      }
      ASSERT_NE(v, kInvalidNode);
      ASSERT_TRUE(present[v]);
      int max_key = -1;
      for (NodeId u = 0; u < n; ++u) {
        if (present[u]) max_key = std::max(max_key, ref_key[u]);
      }
      EXPECT_EQ(ref_key[v], max_key) << "step " << step;
      present[v] = false;
      --present_count;
    } else {  // remove random present node
      if (present_count == 0) continue;
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.Uniform(n));
      } while (!present[v]);
      heap.Remove(v);
      present[v] = false;
      --present_count;
    }
    EXPECT_EQ(heap.size(), present_count);
    // Spot-check keys.
    NodeId probe = static_cast<NodeId>(rng.Uniform(n));
    if (present[probe]) {
      EXPECT_EQ(heap.KeyOf(probe), ref_key[probe]);
      EXPECT_TRUE(heap.Contains(probe));
    } else {
      EXPECT_FALSE(heap.Contains(probe));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitHeapRandomTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace gorder::order
