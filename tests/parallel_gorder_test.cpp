#include "order/parallel_gorder.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "order/gorder.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

TEST(ParallelGorderTest, ValidPermutationAcrossPartCounts) {
  Graph g = gen::MakeDataset("flickr", 0.15);
  for (int parts : {1, 2, 4, 8}) {
    auto perm = ParallelGorderOrder(g, {}, parts);
    CheckPermutation(perm, g.NumNodes());
  }
}

TEST(ParallelGorderTest, DeterministicRegardlessOfThreadCount) {
  Graph g = gen::MakeDataset("wiki", 0.1);
  auto one = ParallelGorderOrder(g, {}, 4, /*num_threads=*/1);
  auto four = ParallelGorderOrder(g, {}, 4, /*num_threads=*/4);
  EXPECT_EQ(one, four);
}

TEST(ParallelGorderTest, SinglePartEqualsSequential) {
  Graph g = gen::MakeDataset("epinion", 0.05);
  EXPECT_EQ(ParallelGorderOrder(g, {}, 1), GorderOrder(g, {}));
}

TEST(ParallelGorderTest, TinyGraphFallsBackToSequential) {
  Rng rng(1);
  Graph g = gen::ErdosRenyi(10, 30, rng);
  EXPECT_EQ(ParallelGorderOrder(g, {}, 8), GorderOrder(g, {}));
}

TEST(ParallelGorderTest, QualityCloseToSequential) {
  Graph g = gen::MakeDataset("wiki", 0.15);
  auto seq = GorderOrder(g, {});
  auto par = ParallelGorderOrder(g, {}, 4);
  auto f_seq = GorderScoreUnderPermutation(g, seq, 5);
  auto f_par = GorderScoreUnderPermutation(g, par, 5);
  // Cross-part edges are invisible to the per-part greedy; empirically
  // 4-way partitioning keeps ~70% of the sequential objective on web
  // graphs. Require >= 60% here and far above Random.
  EXPECT_GT(f_par * 5, f_seq * 3);
  Rng rng(2);
  auto random = RandomOrder(g, rng);
  EXPECT_GT(f_par, 2 * GorderScoreUnderPermutation(g, random, 5));
}

TEST(ParallelGorderTest, DisconnectedAndEmptySafe) {
  Graph empty;
  EXPECT_TRUE(ParallelGorderOrder(empty, {}, 4).empty());
  Graph::Builder b;
  for (NodeId v = 0; v < 50; ++v) b.AddEdge(v, (v + 1) % 50);
  for (NodeId v = 100; v < 150; ++v) b.AddEdge(v, v + 1);
  b.ReserveNodes(200);
  Graph g = b.Build();
  CheckPermutation(ParallelGorderOrder(g, {}, 4), g.NumNodes());
}

}  // namespace
}  // namespace gorder::order
