#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "order/gorder.h"
#include "order/incremental_gorder.h"
#include "util/rng.h"

namespace gorder {
namespace {

TEST(DynamicGraphTest, BuildsIncrementally) {
  DynamicGraph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  NodeId c = g.AddNode();
  EXPECT_TRUE(g.AddEdge(a, b));
  EXPECT_TRUE(g.AddEdge(b, c));
  EXPECT_FALSE(g.AddEdge(a, b));  // duplicate
  EXPECT_FALSE(g.AddEdge(a, a));  // self loop
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_FALSE(g.HasEdge(b, a));
  EXPECT_EQ(g.OutDegree(b), 1u);
  EXPECT_EQ(g.InDegree(b), 1u);
}

TEST(DynamicGraphTest, RoundTripsWithCsr) {
  Rng rng(1);
  Graph base = gen::ErdosRenyi(200, 900, rng);
  DynamicGraph dyn(base);
  EXPECT_EQ(dyn.NumEdges(), base.NumEdges());
  Graph back = dyn.ToCsr();
  EXPECT_EQ(back.ToEdges(), base.ToEdges());
}

TEST(DynamicGraphTest, GrowsFromSnapshot) {
  Rng rng(2);
  Graph base = gen::ErdosRenyi(100, 300, rng);
  DynamicGraph dyn(base);
  NodeId v = dyn.AddNode();
  EXPECT_TRUE(dyn.AddEdge(v, 0));
  EXPECT_TRUE(dyn.AddEdge(5, v));
  Graph grown = dyn.ToCsr();
  EXPECT_EQ(grown.NumNodes(), base.NumNodes() + 1);
  EXPECT_EQ(grown.NumEdges(), base.NumEdges() + 2);
  EXPECT_TRUE(grown.HasEdge(v, 0));
}

TEST(IncrementalGorderTest, StartsFromFullGorder) {
  Graph base = gen::MakeDataset("epinion", 0.05);
  order::IncrementalGorder inc(base);
  auto perm = inc.CurrentPermutation();
  CheckPermutation(perm, base.NumNodes());
  EXPECT_EQ(perm, order::GorderOrder(base, {}));
  EXPECT_EQ(inc.StalenessRatio(), 0.0);
}

TEST(IncrementalGorderTest, InsertionsKeepValidPermutation) {
  Graph base = gen::MakeDataset("epinion", 0.05);
  order::IncrementalGorder inc(base);
  Rng rng(3);
  const NodeId base_n = base.NumNodes();
  for (int i = 0; i < 200; ++i) {
    NodeId v = inc.AddNode();
    // Each new node links to 3 random existing nodes, both directions.
    for (int e = 0; e < 3; ++e) {
      NodeId u = static_cast<NodeId>(rng.Uniform(base_n));
      inc.AddEdge(v, u);
      inc.AddEdge(u, v);
    }
  }
  auto perm = inc.CurrentPermutation();
  CheckPermutation(perm, inc.graph().NumNodes());
  EXPECT_GT(inc.StalenessRatio(), 0.0);
}

TEST(IncrementalGorderTest, NewNodesLandNearTheirNeighbours) {
  Graph base = gen::MakeDataset("epinion", 0.05);
  order::IncrementalGorder inc(base);
  // A fresh node connected to a single anchor should sit right next to
  // it in the arrangement.
  NodeId anchor = 10;
  NodeId v = inc.AddNode();
  inc.AddEdge(v, anchor);
  auto perm = inc.CurrentPermutation();
  EXPECT_EQ(perm[v], perm[anchor] + 1);
}

TEST(IncrementalGorderTest, IncrementalBeatsAppendOnLocality) {
  // Stream growth: incremental maintenance should preserve much more
  // Gorder-score locality than naive id-append order.
  Graph base = gen::MakeDataset("epinion", 0.08);
  order::IncrementalGorder inc(base);
  DynamicGraph naive(base);
  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    NodeId vi = inc.AddNode();
    NodeId vn = naive.AddNode();
    ASSERT_EQ(vi, vn);
    NodeId u = static_cast<NodeId>(rng.Uniform(base.NumNodes()));
    NodeId u2 = static_cast<NodeId>(rng.Uniform(base.NumNodes()));
    inc.AddEdge(vi, u);
    inc.AddEdge(u2, vi);
    naive.AddEdge(vn, u);
    naive.AddEdge(u2, vn);
  }
  Graph grown = naive.ToCsr();
  auto inc_perm = inc.CurrentPermutation();
  std::uint64_t f_inc = GorderScoreUnderPermutation(grown, inc_perm, 5);
  std::uint64_t f_append = GorderScore(grown, 5);
  EXPECT_GT(f_inc, f_append);
}

TEST(IncrementalGorderTest, FullRebuildResetsStaleness) {
  Graph base = gen::MakeDataset("epinion", 0.05);
  order::IncrementalGorder inc(base);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(base.NumNodes()));
    NodeId w = static_cast<NodeId>(rng.Uniform(base.NumNodes()));
    if (u != w) inc.AddEdge(u, w);
  }
  EXPECT_GT(inc.StalenessRatio(), 0.0);
  inc.FullRebuild();
  EXPECT_EQ(inc.StalenessRatio(), 0.0);
  auto perm = inc.CurrentPermutation();
  CheckPermutation(perm, inc.graph().NumNodes());
  // After a rebuild the arrangement equals batch Gorder on the snapshot.
  EXPECT_EQ(perm, order::GorderOrder(inc.graph().ToCsr(), {}));
}

TEST(IncrementalGorderTest, EmptyBaseGrowsSafely) {
  Graph empty;
  order::IncrementalGorder inc(empty);
  NodeId a = inc.AddNode();
  NodeId b = inc.AddNode();
  inc.AddEdge(a, b);
  auto perm = inc.CurrentPermutation();
  CheckPermutation(perm, 2);
}

}  // namespace
}  // namespace gorder
