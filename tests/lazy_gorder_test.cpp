// Tests for the lazy-decrement Gorder variant (the paper's
// priority-queue optimisation) and for label propagation.

#include <gtest/gtest.h>

#include "algo/extra.h"
#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "order/gorder.h"
#include "util/rng.h"

namespace gorder {
namespace {

class LazyGorderTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LazyGorderTest, LazyVariantValidAndEquallyGood) {
  Graph g = gen::MakeDataset(GetParam(), 0.1);
  order::OrderingParams eager;
  order::OrderingParams lazy;
  lazy.gorder_lazy_decrements = true;
  auto perm_eager = order::GorderOrder(g, eager);
  auto perm_lazy = order::GorderOrder(g, lazy);
  CheckPermutation(perm_lazy, g.NumNodes());
  // Same greedy objective: the achieved F must be equivalent up to
  // tie-resolution noise (allow 10%).
  auto f_eager = GorderScoreUnderPermutation(g, perm_eager, 5);
  auto f_lazy = GorderScoreUnderPermutation(g, perm_lazy, 5);
  EXPECT_GT(f_lazy * 10, f_eager * 9)
      << "lazy F " << f_lazy << " vs eager F " << f_eager;
}

INSTANTIATE_TEST_SUITE_P(Datasets, LazyGorderTest,
                         ::testing::Values("epinion", "wiki", "pokec",
                                           "flickr"));

TEST(LazyGorderTest, DeterministicAndDistinctFlagHonored) {
  Graph g = gen::MakeDataset("epinion", 0.05);
  order::OrderingParams lazy;
  lazy.gorder_lazy_decrements = true;
  EXPECT_EQ(order::GorderOrder(g, lazy), order::GorderOrder(g, lazy));
}

TEST(LazyGorderTest, TinyWindowAndHugeWindow) {
  Rng rng(3);
  Graph g = gen::CopyingModel(400, 5, 0.5, rng);
  for (NodeId w : {1u, 7u, 100000u}) {
    order::OrderingParams p;
    p.window = w;
    p.gorder_lazy_decrements = true;
    CheckPermutation(order::GorderOrder(g, p), g.NumNodes());
  }
}

TEST(LabelPropagationTest, DisconnectedCliquesGetDistinctLabels) {
  std::vector<Edge> edges;
  auto clique = [&](NodeId base, NodeId size) {
    for (NodeId u = 0; u < size; ++u) {
      for (NodeId v = 0; v < size; ++v) {
        if (u != v) edges.push_back({base + u, base + v});
      }
    }
  };
  clique(0, 8);
  clique(8, 8);
  Graph g = Graph::FromEdges(16, std::move(edges));
  auto r = algo::LabelPropagation(g);
  EXPECT_EQ(r.num_components, 2u);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_EQ(r.component[v], r.component[0]);
    EXPECT_EQ(r.component[8 + v], r.component[8]);
  }
  EXPECT_NE(r.component[0], r.component[8]);
}

TEST(LabelPropagationTest, IsolatedNodesKeepOwnLabels) {
  Graph::Builder b;
  b.ReserveNodes(5);
  Graph g = b.Build();
  auto r = algo::LabelPropagation(g);
  EXPECT_EQ(r.num_components, 5u);
}

TEST(LabelPropagationTest, RecoversPlantedCommunitiesRoughly) {
  Rng rng(9);
  gen::PlantedPartitionParams p;
  p.num_nodes = 600;
  p.num_communities = 6;
  p.avg_degree = 16;
  p.mixing = 0.05;
  Graph g = gen::PlantedPartition(p, rng);
  auto r = algo::LabelPropagation(g, 20);
  // Should find far fewer communities than nodes, and the largest one
  // should not swallow everything at this low mixing.
  EXPECT_LT(r.num_components, 100u);
  EXPECT_GE(r.num_components, 2u);
}

TEST(LabelPropagationTest, TracedMatchesUntraced) {
  Rng rng(10);
  Graph g = gen::ErdosRenyi(200, 1000, rng);
  cachesim::CacheHierarchy caches(cachesim::CacheHierarchyConfig::TestTiny());
  auto a = algo::LabelPropagation(g, 5);
  auto b = algo::LabelPropagationTraced(g, 5, caches);
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_EQ(a.component, b.component);
  EXPECT_GT(caches.stats().l1_refs, 0u);
}

}  // namespace
}  // namespace gorder
