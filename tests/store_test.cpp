// src/store round-trip and cache-correctness tests: gpack write -> load
// (both mmap and copy) must be bit-identical to the in-memory graph,
// algorithm kernels must not care whether the CSR is owned or mapped (at
// any thread count), and the ordering artifact cache must return exactly
// what was saved — and nothing when the key does not match.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

namespace fs = std::filesystem;

/// Per-test unique temp path (tests run concurrently under ctest -j;
/// shared fixed names collide).
std::string TempPath(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string("gorder_store_") + info->test_suite_name() +
                     "_" + info->name() + "_" + tag;
  for (char& c : name) {
    if (c == '/' || c == '\\') c = '_';
  }
  return (fs::temp_directory_path() / name).string();
}

/// RAII deleter so failed tests don't leak files into /tmp.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

void ExpectSameCsr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.out_offsets(), b.out_offsets());
  EXPECT_EQ(a.out_neighbors(), b.out_neighbors());
  EXPECT_EQ(a.in_offsets(), b.in_offsets());
  EXPECT_EQ(a.in_neighbors(), b.in_neighbors());
}

/// The shapes that stress the container: empty, no-edge, hub, chain and
/// each generator family.
std::vector<std::pair<std::string, Graph>> InterestingGraphs() {
  std::vector<std::pair<std::string, Graph>> out;
  out.emplace_back("empty", Graph());
  out.emplace_back("single", Graph::FromEdges(1, {}));
  out.emplace_back("isolated", Graph::FromEdges(5, {}));
  {
    std::vector<Edge> star;
    for (NodeId v = 1; v < 64; ++v) star.push_back({0, v});
    out.emplace_back("star", Graph::FromEdges(64, std::move(star)));
  }
  {
    std::vector<Edge> path;
    for (NodeId v = 0; v + 1 < 100; ++v) path.push_back({v, v + 1});
    out.emplace_back("path", Graph::FromEdges(100, std::move(path)));
  }
  out.emplace_back("rmat", gen::MakeDataset("epinion", 0.1, 7));
  out.emplace_back("planted", gen::MakeDataset("pokec", 0.05, 7));
  out.emplace_back("copying", gen::MakeDataset("wiki", 0.03, 7));
  return out;
}

TEST(GpackRoundTrip, MmapAndCopyAreBitIdentical) {
  for (auto& [tag, g] : InterestingGraphs()) {
    SCOPED_TRACE(tag);
    TempFile tmp(TempPath(tag) + ".gpack");
    ASSERT_TRUE(store::WritePack(tmp.path, g).ok);

    Graph mapped;
    ASSERT_TRUE(store::LoadPack(tmp.path, &mapped, store::LoadMode::kMmap).ok);
    ExpectSameCsr(g, mapped);

    Graph copied;
    ASSERT_TRUE(store::LoadPack(tmp.path, &copied, store::LoadMode::kCopy).ok);
    ExpectSameCsr(g, copied);
    EXPECT_FALSE(copied.IsMapped());

    // Per-node degrees through the accessor APIs as well.
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ(g.OutDegree(v), mapped.OutDegree(v));
      ASSERT_EQ(g.InDegree(v), mapped.InDegree(v));
    }
    EXPECT_TRUE(store::VerifyPack(tmp.path).ok);

    store::GpackInfo info;
    ASSERT_TRUE(store::ReadPackInfo(tmp.path, &info).ok);
    EXPECT_EQ(info.format_version, store::kGpackFormatVersion);
    EXPECT_EQ(info.num_nodes, g.NumNodes());
    EXPECT_EQ(info.num_edges, g.NumEdges());
    EXPECT_EQ(info.fingerprint, store::GraphFingerprint(g));
    EXPECT_EQ(info.sections.size(), 4u);
  }
}

TEST(GpackRoundTrip, AllRegisteredDatasetsSmallScale) {
  for (const auto& spec : gen::AllDatasets()) {
    SCOPED_TRACE(spec.name);
    Graph g = gen::MakeDataset(spec.name, 0.02, 3);
    TempFile tmp(TempPath(spec.name) + ".gpack");
    ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
    Graph mapped;
    ASSERT_TRUE(store::LoadPack(tmp.path, &mapped).ok);
    ExpectSameCsr(g, mapped);
    EXPECT_TRUE(mapped.IsMapped());
  }
}

// The serving contract behind zero-copy loading: every kernel produces
// bit-identical results on an owned and an mmap-backed graph, at every
// thread count.
TEST(GpackKernels, IdenticalOwnedVsMappedAtAnyThreadCount) {
  Graph g = gen::MakeDataset("flickr", 0.08, 11);
  TempFile tmp(TempPath("kernels") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
  Graph mapped;
  ASSERT_TRUE(store::LoadPack(tmp.path, &mapped).ok);
  ASSERT_TRUE(mapped.IsMapped());

  const int before = NumThreads();
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    SetNumThreads(threads);
    auto pr_a = algo::PageRank(g, 15);
    auto pr_b = algo::PageRank(mapped, 15);
    EXPECT_EQ(pr_a.rank, pr_b.rank);  // bitwise: both vectors of doubles
    EXPECT_EQ(pr_a.total_mass, pr_b.total_mass);

    auto bfs_a = algo::BfsForest(g);
    auto bfs_b = algo::BfsForest(mapped);
    EXPECT_EQ(bfs_a.level, bfs_b.level);
    EXPECT_EQ(bfs_a.sum_levels, bfs_b.sum_levels);

    auto sp_a = algo::Sp(g, 0);
    auto sp_b = algo::Sp(mapped, 0);
    EXPECT_EQ(sp_a.dist, sp_b.dist);

    auto wcc_a = algo::Wcc(g);
    auto wcc_b = algo::Wcc(mapped);
    EXPECT_EQ(wcc_a.component, wcc_b.component);

    EXPECT_EQ(algo::TriangleCount(g), algo::TriangleCount(mapped));
  }
  SetNumThreads(before);
}

// Relabel of a mapped graph must materialise an owned graph with the
// same content as relabelling the owned original.
TEST(GpackKernels, RelabelOfMappedGraph) {
  Graph g = gen::MakeDataset("epinion", 0.1, 5);
  TempFile tmp(TempPath("relabel") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
  Graph mapped;
  ASSERT_TRUE(store::LoadPack(tmp.path, &mapped).ok);

  order::OrderingParams params;
  auto perm = order::ComputeOrdering(g, order::Method::kGorder, params);
  Graph a = g.Relabel(perm);
  Graph b = mapped.Relabel(perm);
  ExpectSameCsr(a, b);
  EXPECT_FALSE(b.IsMapped());
}

TEST(Fingerprint, StableAndContentSensitive) {
  Graph g1 = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph g2 = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph g3 = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}});  // one edge off
  Graph g4 = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}});  // extra node
  const auto f1 = store::GraphFingerprint(g1);
  EXPECT_EQ(f1, store::GraphFingerprint(g2));
  EXPECT_NE(f1, store::GraphFingerprint(g3));
  EXPECT_NE(f1, store::GraphFingerprint(g4));
  EXPECT_EQ(store::FingerprintHex(f1).size(), 16u);

  // The fingerprint is part of the on-disk format: a mapped reload must
  // reproduce it exactly.
  TempFile tmp(TempPath("fp") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g1).ok);
  Graph mapped;
  ASSERT_TRUE(store::LoadPack(tmp.path, &mapped).ok);
  EXPECT_EQ(f1, store::GraphFingerprint(mapped));
}

TEST(Crc32, KnownVectorAndStreaming) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Streaming in two chunks must equal one shot.
  std::uint32_t seed = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, seed), 0xCBF43926u);
}

TEST(OrderingCache, SaveThenLoadRoundTrip) {
  TempFile root(TempPath("store"));
  store::Store s(root.path);
  Graph g = gen::MakeDataset("epinion", 0.1, 9);
  const auto fp = store::GraphFingerprint(g);
  order::OrderingParams params;
  params.seed = 9;
  auto perm = order::ComputeOrdering(g, order::Method::kGorder, params);

  store::Store::CachedOrdering out;
  EXPECT_FALSE(s.LoadOrdering(fp, order::Method::kGorder, params,
                              g.NumNodes(), &out));
  ASSERT_TRUE(
      s.SaveOrdering(fp, order::Method::kGorder, params, perm, 1.25).ok);
  ASSERT_TRUE(s.LoadOrdering(fp, order::Method::kGorder, params,
                             g.NumNodes(), &out));
  EXPECT_EQ(out.perm, perm);
  EXPECT_DOUBLE_EQ(out.compute_seconds, 1.25);
}

TEST(OrderingCache, KeyMismatchesAreMisses) {
  TempFile root(TempPath("store"));
  store::Store s(root.path);
  Graph g = gen::MakeDataset("epinion", 0.1, 9);
  const auto fp = store::GraphFingerprint(g);
  order::OrderingParams params;
  params.seed = 9;
  auto perm = order::ComputeOrdering(g, order::Method::kGorder, params);
  ASSERT_TRUE(
      s.SaveOrdering(fp, order::Method::kGorder, params, perm, 0.5).ok);

  store::Store::CachedOrdering out;
  // Different graph fingerprint.
  EXPECT_FALSE(s.LoadOrdering(fp ^ 1, order::Method::kGorder, params,
                              g.NumNodes(), &out));
  // Different method.
  EXPECT_FALSE(s.LoadOrdering(fp, order::Method::kRcm, params, g.NumNodes(),
                              &out));
  // Different params (window is part of the key).
  order::OrderingParams other = params;
  other.window = 7;
  EXPECT_FALSE(s.LoadOrdering(fp, order::Method::kGorder, other,
                              g.NumNodes(), &out));
  // Wrong node count (caller resolved a different graph).
  EXPECT_FALSE(s.LoadOrdering(fp, order::Method::kGorder, params,
                              g.NumNodes() + 1, &out));
  // Unchanged key still hits.
  EXPECT_TRUE(s.LoadOrdering(fp, order::Method::kGorder, params,
                             g.NumNodes(), &out));
}

TEST(OrderingCache, ParamsHashCoversEveryField) {
  const order::OrderingParams base;
  auto key = [](const order::OrderingParams& p) {
    return store::HashOrderingKey(order::Method::kGorder, p);
  };
  const auto base_key = key(base);
  order::OrderingParams p;

  p = base;
  p.seed = 1;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.window = 9;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.gorder_sibling_score = false;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.gorder_neighbor_score = false;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.gorder_hub_cap = 32;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.gorder_lazy_decrements = true;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.sa_steps = 100;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.sa_standard_energy = 2.0;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.sa_local_search = true;
  EXPECT_NE(key(p), base_key);
  p = base;
  p.ldg_bin_capacity = 128;
  EXPECT_NE(key(p), base_key);

  EXPECT_NE(store::HashOrderingKey(order::Method::kRcm, base), base_key);
  EXPECT_EQ(key(base), base_key);  // deterministic
}

TEST(StoreDatasets, MissThenHitProducesIdenticalGraph) {
  TempFile root(TempPath("store"));
  store::Store s(root.path);
  Graph direct = gen::MakeDataset("epinion", 0.1, 42);

  Graph miss = s.GetDataset("epinion", 0.1, 42);  // generates + packs
  ExpectSameCsr(direct, miss);
  ASSERT_TRUE(fs::exists(s.PackPath("epinion", 0.1, 42)));

  Graph hit = s.GetDataset("epinion", 0.1, 42);  // mmap of the pack
  ExpectSameCsr(direct, hit);
  EXPECT_TRUE(hit.IsMapped());

  // A different recipe gets a different pack file.
  EXPECT_NE(s.PackPath("epinion", 0.1, 42), s.PackPath("epinion", 0.2, 42));
  EXPECT_NE(s.PackPath("epinion", 0.1, 42), s.PackPath("epinion", 0.1, 43));
  EXPECT_NE(s.PackPath("epinion", 0.1, 42), s.PackPath("pokec", 0.1, 42));
}

TEST(StoreDatasets, CorruptPackRegeneratesInsteadOfFailing) {
  TempFile root(TempPath("store"));
  store::Store s(root.path);
  Graph direct = gen::MakeDataset("epinion", 0.1, 42);
  (void)s.GetDataset("epinion", 0.1, 42);

  // Truncate the pack: the store must fall back to regeneration.
  const std::string pack = s.PackPath("epinion", 0.1, 42);
  ASSERT_TRUE(fs::exists(pack));
  fs::resize_file(pack, fs::file_size(pack) / 2);
  Graph recovered = s.GetDataset("epinion", 0.1, 42);
  ExpectSameCsr(direct, recovered);
}

TEST(DatasetRegistry, FindIsNonAbortingAndListsNames) {
  EXPECT_NE(gen::FindDatasetSpec("epinion"), nullptr);
  EXPECT_EQ(gen::FindDatasetSpec("epinion")->name, "epinion");
  EXPECT_EQ(gen::FindDatasetSpec("nope"), nullptr);
  EXPECT_EQ(gen::FindDatasetSpec(""), nullptr);
  std::string names = gen::DatasetNames();
  for (const auto& spec : gen::AllDatasets()) {
    EXPECT_NE(names.find(spec.name), std::string::npos) << names;
  }
}

TEST(ArrayRefTest, OwnedAndBorrowedSemantics) {
  ArrayRef<int> owned(std::vector<int>{1, 2, 3});
  EXPECT_FALSE(owned.borrowed());
  EXPECT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned[1], 2);

  auto backing = std::make_shared<std::vector<int>>(std::vector<int>{4, 5});
  ArrayRef<int> borrowed(backing->data(), backing->size(), backing);
  EXPECT_TRUE(borrowed.borrowed());
  EXPECT_EQ(borrowed.size(), 2u);
  EXPECT_EQ(borrowed[0], 4);

  // Moves must preserve the data pointer contract for both flavours.
  ArrayRef<int> owned2 = std::move(owned);
  EXPECT_EQ(owned2.size(), 3u);
  EXPECT_EQ(owned2[2], 3);
  ArrayRef<int> borrowed2 = std::move(borrowed);
  EXPECT_EQ(borrowed2.data(), backing->data());

  // ToVector detaches from the backing store.
  std::vector<int> copy = borrowed2.ToVector();
  EXPECT_EQ(copy, (std::vector<int>{4, 5}));

  EXPECT_EQ(owned2, ArrayRef<int>(std::vector<int>{1, 2, 3}));
  EXPECT_NE(owned2, borrowed2);
}

}  // namespace
}  // namespace gorder
