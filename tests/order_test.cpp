#include "order/ordering.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "order/annealing.h"
#include "util/logging.h"

namespace gorder::order {
namespace {

Graph TestGraph(std::uint64_t seed = 1) {
  Rng rng(seed);
  return gen::Rmat({11, 16000, 0.57, 0.19, 0.19}, rng);
}

// ---- Every method on every structure must be a valid permutation ----

struct ValidityCase {
  Method method;
  const char* graph_kind;
};

class OrderingValidityTest
    : public ::testing::TestWithParam<std::tuple<Method, const char*>> {};

Graph MakeGraphKind(const std::string& kind) {
  Rng rng(99);
  if (kind == "rmat") return gen::Rmat({9, 4000, 0.57, 0.19, 0.19}, rng);
  if (kind == "er") return gen::ErdosRenyi(400, 1600, rng);
  if (kind == "web") return gen::CopyingModel(500, 6, 0.6, rng);
  if (kind == "disconnected") {
    // Three components of different flavours + isolated nodes.
    Graph::Builder b;
    for (NodeId v = 0; v < 10; ++v) b.AddEdge(v, (v + 1) % 10);
    for (NodeId v = 20; v < 30; ++v) {
      for (NodeId w = 20; w < 30; ++w) {
        if (v != w) b.AddEdge(v, w);
      }
    }
    b.AddEdge(40, 41);
    b.ReserveNodes(50);
    return b.Build();
  }
  if (kind == "singleton") return Graph::FromEdges(1, {});
  if (kind == "two_nodes") return Graph::FromEdges(2, {{0, 1}});
  GORDER_CHECK(false);
  __builtin_unreachable();
}

TEST_P(OrderingValidityTest, ProducesValidPermutation) {
  auto [method, kind] = GetParam();
  Graph g = MakeGraphKind(kind);
  OrderingParams params;
  params.sa_steps = 2000;  // keep annealing fast in tests
  auto perm = ComputeOrdering(g, method, params);
  CheckPermutation(perm, g.NumNodes());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesGraphs, OrderingValidityTest,
    ::testing::Combine(
        ::testing::ValuesIn(AllMethods()),
        ::testing::Values("rmat", "er", "web", "disconnected", "singleton",
                          "two_nodes")),
    [](const auto& info) {
      return MethodName(std::get<0>(info.param)) + std::string("_") +
             std::get<1>(info.param);
    });

// ---- Method registry ----

TEST(RegistryTest, NamesRoundTrip) {
  for (Method m : AllMethods()) {
    EXPECT_EQ(MethodFromName(MethodName(m)), m);
  }
  EXPECT_EQ(AllMethods().size(), 10u);
  EXPECT_EQ(MethodName(Method::kGorder), "Gorder");
  EXPECT_EQ(MethodName(Method::kInDegSort), "InDegSort");
}

// ---- Individual method properties ----

TEST(OriginalTest, IsIdentity) {
  Graph g = TestGraph();
  EXPECT_EQ(OriginalOrder(g), IdentityPermutation(g.NumNodes()));
}

TEST(RandomTest, DeterministicInSeedAndNotIdentity) {
  Graph g = TestGraph();
  OrderingParams p;
  p.seed = 5;
  auto a = ComputeOrdering(g, Method::kRandom, p);
  auto b = ComputeOrdering(g, Method::kRandom, p);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, IdentityPermutation(g.NumNodes()));
  p.seed = 6;
  EXPECT_NE(ComputeOrdering(g, Method::kRandom, p), a);
}

TEST(InDegSortTest, RanksDescendByInDegree) {
  Graph g = TestGraph();
  auto perm = InDegSortOrder(g);
  auto order = InvertPermutation(perm);
  for (NodeId r = 1; r < g.NumNodes(); ++r) {
    EXPECT_GE(g.InDegree(order[r - 1]), g.InDegree(order[r]));
  }
}

TEST(InDegSortTest, StableWithinEqualDegrees) {
  auto g = Graph::FromEdges(4, {{0, 1}, {2, 3}});  // in-degs: 0,1,0,1
  auto perm = InDegSortOrder(g);
  auto order = InvertPermutation(perm);
  EXPECT_EQ(order, (std::vector<NodeId>{1, 3, 0, 2}));
}

TEST(ChDfsTest, MatchesDfsDiscoveryOrder) {
  // ChDFS ordering relabels nodes by DFS discovery; running DFS on the
  // relabelled graph must then discover nodes in exactly id order.
  Graph g = TestGraph();
  auto perm = ChDfsOrder(g);
  CheckPermutation(perm, g.NumNodes());
  Graph h = g.Relabel(perm);
  auto again = ChDfsOrder(h);
  EXPECT_EQ(again, IdentityPermutation(h.NumNodes()));
}

TEST(RcmTest, ReducesBandwidthOnBandedGraph) {
  // A random ordering of a path graph has huge bandwidth; RCM restores
  // a near-minimal one.
  const NodeId n = 500;
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  Graph path = Graph::FromEdges(n, std::move(edges));
  Rng rng(3);
  auto shuffled = IdentityPermutation(n);
  rng.Shuffle(shuffled);
  Graph scrambled = path.Relabel(shuffled);
  EXPECT_GT(Bandwidth(scrambled), 10u);
  Graph rcm = scrambled.Relabel(RcmOrder(scrambled));
  EXPECT_EQ(Bandwidth(rcm), 1u);  // a path relabels perfectly
}

TEST(RcmTest, ImprovesBandwidthOnRealisticGraph) {
  Graph g = TestGraph();
  Rng rng(4);
  Graph random = g.Relabel(RandomOrder(g, rng));
  Graph rcm = g.Relabel(RcmOrder(g));
  EXPECT_LT(Bandwidth(rcm) * 1.0, Bandwidth(random) * 1.0);
}

TEST(SlashBurnTest, HubsFirstIsolatesLast) {
  // Star graph: hub 0 with 20 leaves. SlashBurn must put the hub first
  // and all (then-isolated) leaves at the back.
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 20; ++v) edges.push_back({0, v});
  Graph g = Graph::FromEdges(21, std::move(edges));
  auto perm = SlashBurnOrder(g);
  EXPECT_EQ(perm[0], 0u);
  for (NodeId v = 1; v <= 20; ++v) EXPECT_GE(perm[v], 1u);
}

TEST(SlashBurnTest, FrontRanksHaveHigherDegree) {
  Graph g = TestGraph();
  auto perm = SlashBurnOrder(g);
  auto order = InvertPermutation(perm);
  // The first selected hub is a max-degree node.
  NodeId first = order[0];
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_GE(g.UndirectedDegree(first), g.UndirectedDegree(v));
  }
}

TEST(LdgTest, BinsRespectCapacityAndClusterNeighbors) {
  Graph g = TestGraph();
  const NodeId k = 64;
  auto perm = LdgOrder(g, k);
  CheckPermutation(perm, g.NumNodes());
  // With bins of k consecutive ranks, co-binned nodes should include
  // many neighbours: the average rank gap under LDG must beat random.
  Rng rng(5);
  Graph ldg = g.Relabel(perm);
  Graph random = g.Relabel(RandomOrder(g, rng));
  EXPECT_LT(LogArrangementCost(ldg), LogArrangementCost(random));
}

TEST(LdgTest, TinyCapacityWorks) {
  Graph g = MakeGraphKind("er");
  auto perm = LdgOrder(g, 1);  // degenerate: every node its own bin
  CheckPermutation(perm, g.NumNodes());
}

// ---- Annealing ----

TEST(AnnealingTest, LocalSearchNeverIncreasesEnergy) {
  Graph g = MakeGraphKind("er");
  double before = ArrangementEnergyOf(g, ArrangementEnergy::kLinear);
  Rng rng(6);
  auto r = AnnealArrangement(g, ArrangementEnergy::kLinear, 20000, 0.0, rng);
  EXPECT_LE(r.final_energy, before);
  CheckPermutation(r.perm, g.NumNodes());
  // Tracked incremental energy must match a from-scratch evaluation.
  Graph relabeled = g.Relabel(r.perm);
  EXPECT_NEAR(ArrangementEnergyOf(relabeled, ArrangementEnergy::kLinear),
              r.final_energy, 1e-6 * std::max(1.0, r.final_energy));
}

TEST(AnnealingTest, LogEnergyTrackedCorrectly) {
  Graph g = MakeGraphKind("web");
  Rng rng(7);
  auto r = AnnealArrangement(g, ArrangementEnergy::kLog, 20000, 0.0, rng);
  Graph relabeled = g.Relabel(r.perm);
  EXPECT_NEAR(ArrangementEnergyOf(relabeled, ArrangementEnergy::kLog),
              r.final_energy, 1e-6 * std::abs(r.final_energy) + 1e-6);
}

TEST(AnnealingTest, HugeStandardEnergyAcceptsAlmostEverything) {
  // Replication Figure 3 observation (b): very large k accepts all swaps
  // and the arrangement stays near random (high energy).
  Graph g = MakeGraphKind("er");
  Rng rng1(8), rng2(8);
  auto hot = AnnealArrangement(g, ArrangementEnergy::kLinear, 5000, 1e12,
                               rng1);
  auto cold = AnnealArrangement(g, ArrangementEnergy::kLinear, 5000, 0.0,
                                rng2);
  EXPECT_GT(hot.accepted_swaps, cold.accepted_swaps);
  EXPECT_GT(hot.final_energy, cold.final_energy);
}

TEST(AnnealingTest, MoreStepsNoWorse) {
  Graph g = MakeGraphKind("er");
  Rng rng1(9), rng2(9);
  auto brief = AnnealArrangement(g, ArrangementEnergy::kLinear, 1000, 0.0,
                                 rng1);
  auto lengthy = AnnealArrangement(g, ArrangementEnergy::kLinear, 50000, 0.0,
                                   rng2);
  EXPECT_LE(lengthy.final_energy, brief.final_energy);
}

TEST(AnnealingTest, TrivialGraphsSafe) {
  Graph g1 = Graph::FromEdges(1, {});
  Rng rng(10);
  auto r = AnnealArrangement(g1, ArrangementEnergy::kLinear, 100, 1.0, rng);
  EXPECT_EQ(r.perm.size(), 1u);
  EXPECT_EQ(r.final_energy, 0.0);
}

// ---- Cross-method comparisons on a realistic graph ----

TEST(CrossMethodTest, GorderScoreRanking) {
  // Gorder's objective F must be highest under Gorder's own ordering —
  // that is the whole point — and Random must be worst among the
  // locality-aware methods.
  Graph g = gen::MakeDataset("epinion", 0.08);
  const NodeId w = 5;
  OrderingParams params;
  params.sa_steps = 20000;

  auto score_of = [&](Method m) {
    auto perm = ComputeOrdering(g, m, params);
    return GorderScoreUnderPermutation(g, perm, w);
  };
  auto gorder_score = score_of(Method::kGorder);
  auto original = score_of(Method::kOriginal);
  auto random = score_of(Method::kRandom);
  auto rcm = score_of(Method::kRcm);
  EXPECT_GT(gorder_score, original);
  EXPECT_GT(gorder_score, random);
  EXPECT_GT(gorder_score, rcm);
  EXPECT_GT(rcm, random);
}

}  // namespace
}  // namespace gorder::order
