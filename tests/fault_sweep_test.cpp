// One-fault-at-a-time sweep over the pack -> store -> load -> order ->
// bench -> serve pipeline (DESIGN.md §14). For every registered failpoint and
// every fault kind, exactly one fault is armed and the whole pipeline
// runs in a fresh directory; the sweep then asserts the degradation
// contract:
//
//   * every failure surfaces as a clean IoResult / false return with a
//     non-empty error message — never a crash, leak (ASan job) or abort;
//   * store faults degrade to cache misses: the graph handed to the
//     benchmark kernels and its PageRank result are bit-identical to the
//     fault-free baseline in every single run;
//   * any file present at a *final* artifact path is completely valid —
//     a reader can never observe a partial write — and no `*.tmp.*`
//     staging debris survives anywhere;
//   * the armed point actually fired (the injected fault was really
//     exercised, not skipped).
//
// The baseline pass doubles as the coverage assertion: a registered
// failpoint the pipeline never reaches means dead error-handling code
// (or a failpoint on an unreachable site) and fails the sweep.
//
// Set GORDER_FAULT_REPORT=<path> to dump cumulative per-point hit/fire
// counts after the sweep (the CI fault-injection job uploads this).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/gorder_lib.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gorder {
namespace {

namespace fs = std::filesystem;

#if defined(GORDER_FAILPOINTS_ENABLED)

constexpr const char* kDataset = "epinion";
constexpr double kScale = 0.05;
constexpr std::uint64_t kSeed = 7;

/// Everything one pipeline run produces. Steps are independent: a step
/// that fails records its error and the run carries on, exactly like the
/// narrated degradation paths in production code.
struct PipelineOutcome {
  bool wrote_edgelist = false, read_edgelist = false;
  bool wrote_binary = false, read_binary = false;
  bool copied_pack = false;
  bool saved_ordering = false, loaded_ordering = false;
  bool wrote_trace = false;
  bool ext_packed = false;          // extmem build committed a pack
  bool ext_ordered = false;         // semi-external ordering succeeded
  std::uint64_t ext_fp = 0;         // fingerprint of the extmem pack
  std::vector<NodeId> ext_perm;
  bool serve_started = false;       // daemon bound its socket
  bool serve_queried = false;       // ping+info+neighbors all answered
  bool serve_alive_after = false;   // fresh connection works at the end
  bool admin_scraped = false;       // /healthz answered 200 at the end
  std::uint64_t serve_nodes = 0;    // n reported by the daemon's kInfo
  std::uint64_t roundtrip_fp = 0;  // edge-list roundtrip fingerprint
  std::uint64_t binary_fp = 0;     // binary roundtrip fingerprint
  std::uint64_t cold_fp = 0;       // store.GetDataset, cold
  std::uint64_t warm_fp = 0;       // store.GetDataset, warm
  std::uint64_t copy_fp = 0;       // LoadPack(kCopy)
  std::vector<NodeId> perm;
  std::vector<NodeId> loaded_perm;
  double pr_mass = 0.0;
  std::vector<std::string> errors;  // every failure message, for the
                                    // clean-degradation assertion
};

order::OrderingParams Params() {
  order::OrderingParams params;
  params.seed = kSeed;
  return params;
}

/// Runs the whole pipeline in `dir`. Never throws, never aborts: every
/// fallible step degrades through its IoResult/bool surface.
PipelineOutcome RunPipeline(const std::string& dir) {
  PipelineOutcome out;
  auto note = [&](const IoResult& r) {
    if (!r.ok) out.errors.push_back(r.error);
    return r.ok;
  };
  const Graph base = gen::MakeDataset(kDataset, kScale, kSeed);

  // 1. Edge-list roundtrip (the legacy text loaders/writers).
  const std::string txt = dir + "/g.txt";
  out.wrote_edgelist = note(WriteEdgeList(txt, base));
  if (out.wrote_edgelist) {
    Graph g;
    out.read_edgelist = note(ReadEdgeList(txt, &g));
    if (out.read_edgelist) out.roundtrip_fp = store::GraphFingerprint(g);
  }

  // 2. Legacy binary roundtrip.
  const std::string bin = dir + "/g.bin";
  out.wrote_binary = note(WriteBinary(bin, base));
  if (out.wrote_binary) {
    Graph g;
    out.read_binary = note(ReadBinary(bin, &g));
    if (out.read_binary) out.binary_fp = store::GraphFingerprint(g);
  }

  // 3. Artifact store: cold pack write, warm zero-copy load. GetDataset
  // degrades internally (unusable pack -> regenerate, unwritable pack ->
  // run unpacked), so both graphs must always be correct.
  store::Store store(dir + "/store");
  const Graph cold = store.GetDataset(kDataset, kScale, kSeed);
  out.cold_fp = store::GraphFingerprint(cold);
  const Graph warm = store.GetDataset(kDataset, kScale, kSeed);
  out.warm_fp = store::GraphFingerprint(warm);

  // 4. Deep-copy load of the pack, when one made it to disk.
  const std::string pack = store.PackPath(kDataset, kScale, kSeed);
  if (fs::exists(pack)) {
    Graph g;
    out.copied_pack = note(store::LoadPack(pack, &g, store::LoadMode::kCopy));
    if (out.copied_pack) out.copy_fp = store::GraphFingerprint(g);
  }

  // 5. Ordering: compute (pure CPU, no IO), cache, load back.
  const auto method = order::MethodFromName("Gorder");
  out.perm = order::ComputeOrdering(cold, method, Params());
  const std::uint64_t fp = store::GraphFingerprint(cold);
  out.saved_ordering =
      note(store.SaveOrdering(fp, method, Params(), out.perm, 0.01));
  store::Store::CachedOrdering cached;
  out.loaded_ordering =
      store.LoadOrdering(fp, method, Params(), cold.NumNodes(), &cached);
  if (out.loaded_ordering) out.loaded_perm = std::move(cached.perm);

  // 6. Benchmark kernel on the reordered graph.
  out.pr_mass = algo::PageRank(cold.Relabel(out.perm), 5).total_mass;

  // 7. Telemetry artifact writer.
  out.wrote_trace = obs::WriteChromeTrace(dir + "/trace.json");
  if (!out.wrote_trace) out.errors.push_back("WriteChromeTrace failed");

  // 8. Out-of-core pipeline (src/extmem): stream the text edge list
  // through the external sorter into a windowed-mmap pack build, then
  // run a semi-external ordering over the mapped result. Tiny buffers
  // and fan-in force run spills and compaction merges, so this drives
  // every extmem.* failpoint. A fault may cost the pack (nothing at the
  // final path) or the ordering — never debris or a partial file.
  if (out.wrote_edgelist) {
    const std::string ext_pack = dir + "/ext.gpack";
    extmem::ExtmemOptions eopts;
    eopts.mem_budget_bytes = 1ull << 20;
    eopts.run_buffer_edges = 512;  // force several run spills
    eopts.merge_fanin = 4;         // and compaction merge passes
    extmem::ExtBuildStats stats;
    out.ext_packed =
        note(extmem::StreamEdgeListToPack(txt, ext_pack, eopts, &stats));
    if (out.ext_packed) {
      Graph g;
      if (note(store::LoadPack(ext_pack, &g, store::LoadMode::kCopy))) {
        out.ext_fp = store::GraphFingerprint(g);
      }
      out.ext_ordered = note(
          extmem::SemiExternalOrder(ext_pack, method, Params(), &out.ext_perm));
    }
  }

  // 9. Ordering-as-a-service daemon (src/serve): bind, serve a few
  // queries in-process, then prove the daemon outlives the fault. This
  // is what drives the net.* failpoints (listen/accept/connect/read/
  // write): one injected syscall failure may cost one request or one
  // connection — never the server.
  {
    serve::ServerOptions sopts;
    sopts.listen.is_unix = true;
    sopts.listen.path = dir + "/gd.sock";
    sopts.serve_threads = 1;
    // Admin plane on an ephemeral TCP port: this is what drives the
    // net.admin.* failpoints (accept/read/write). An injected admin
    // fault may cost one scrape — never the daemon.
    sopts.admin_enabled = true;
    sopts.admin_listen.host = "127.0.0.1";
    sopts.admin_listen.port = 0;
    serve::Server server(cold.Clone(), sopts);
    out.serve_started = note(server.Start());
    if (out.serve_started) {
      auto note_reply = [&](const serve::Reply& reply) {
        if (!reply.ok()) out.errors.push_back(reply.error);
        return reply.ok();
      };
      serve::Client client;
      if (note(client.Connect(sopts.listen, 10.0))) {
        const bool ping_ok = note_reply(client.Ping());
        serve::InfoReply info = client.Info();
        const bool info_ok = note_reply(info);
        if (info_ok) out.serve_nodes = info.num_nodes;
        const bool neigh_ok = note_reply(client.Neighbors(0));
        out.serve_queried = ping_ok && info_ok && neigh_ok;
      }
      client.Close();
      // A fresh connection after the carnage: the armed fault has fired
      // by now (or never applied here), so this must always work.
      serve::Client fresh;
      IoResult fc = fresh.Connect(sopts.listen, 10.0);
      if (!fc.ok) out.errors.push_back(fc.error);
      out.serve_alive_after = fc.ok && fresh.Ping().ok();
      fresh.Close();
      // Admin scrape over plain HTTP/1.0. The single-shot armed fault
      // may eat the first attempt (dropped connection / short write);
      // the second must answer — admin faults never wedge the listener.
      auto scrape = [&]() {
        util::NetAddress addr;
        addr.host = "127.0.0.1";
        addr.port = server.AdminPort();
        util::Socket s;
        IoResult cr = util::ConnectSocket(addr, &s, 10.0);
        if (!cr.ok) {
          out.errors.push_back(cr.error);
          return false;
        }
        const std::string get = "GET /healthz HTTP/1.0\r\n\r\n";
        IoResult wr = util::WriteFull(s, get.data(), get.size());
        if (!wr.ok) {
          out.errors.push_back(wr.error);
          return false;
        }
        std::string resp;
        char buf[512];
        std::size_t got = 0;
        while (util::ReadSome(s, buf, sizeof buf, &got).ok && got > 0) {
          resp.append(buf, got);
        }
        if (resp.find(" 200 ") == std::string::npos) {
          out.errors.push_back("admin scrape got no 200: " + resp);
          return false;
        }
        return true;
      };
      out.admin_scraped = scrape() || scrape();
      server.Stop();
    }
  }
  return out;
}

/// Post-run validation: any file at a final path is completely valid and
/// bit-identical to the baseline artifact; no staging debris anywhere.
/// Must run with all failpoints disarmed.
void CheckArtifacts(const std::string& dir, const PipelineOutcome& baseline) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "staging debris left behind: " << entry.path();
  }
  const std::string txt = dir + "/g.txt";
  if (fs::exists(txt)) {
    Graph g;
    IoResult r = ReadEdgeList(txt, &g);
    ASSERT_TRUE(r.ok) << "partial edge list at final path: " << r.error;
    EXPECT_EQ(store::GraphFingerprint(g), baseline.roundtrip_fp);
  }
  const std::string bin = dir + "/g.bin";
  if (fs::exists(bin)) {
    Graph g;
    IoResult r = ReadBinary(bin, &g);
    ASSERT_TRUE(r.ok) << "partial binary graph at final path: " << r.error;
    EXPECT_EQ(store::GraphFingerprint(g), baseline.binary_fp);
  }
  store::Store store(dir + "/store");
  const std::string pack = store.PackPath(kDataset, kScale, kSeed);
  if (fs::exists(pack)) {
    IoResult r = store::VerifyPack(pack);
    EXPECT_TRUE(r.ok) << "partial pack at final path: " << r.error;
  }
  bool have_gperm = false;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.path().extension() == ".gperm") have_gperm = true;
  }
  if (have_gperm) {
    // The only artifact this pipeline saves is keyed exactly like this;
    // if the file exists it must load back bit-identical.
    store::Store::CachedOrdering cached;
    ASSERT_TRUE(store.LoadOrdering(store::GraphFingerprint(gen::MakeDataset(
                                       kDataset, kScale, kSeed)),
                                   order::MethodFromName("Gorder"), Params(),
                                   static_cast<NodeId>(baseline.perm.size()),
                                   &cached))
        << "partial ordering artifact at final path";
    EXPECT_EQ(cached.perm, baseline.perm);
  }
  const std::string ext_pack = dir + "/ext.gpack";
  if (fs::exists(ext_pack)) {
    IoResult r = store::VerifyPack(ext_pack);
    EXPECT_TRUE(r.ok) << "partial extmem pack at final path: " << r.error;
  }
  const std::string trace = dir + "/trace.json";
  if (fs::exists(trace)) {
    std::ifstream in(trace);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    ASSERT_FALSE(contents.empty()) << "empty trace at final path";
    EXPECT_EQ(contents.front(), '{');
    EXPECT_EQ(contents.back(), '}');
  }
}

/// The invariants that hold in EVERY run, faulted or not.
void CheckInvariants(const PipelineOutcome& out,
                     const PipelineOutcome& baseline,
                     const std::string& context) {
  // The store is an accelerator, not a correctness dependency: whatever
  // fault is armed, GetDataset degrades to a miss and the benchmark
  // input stays bit-identical.
  EXPECT_EQ(out.cold_fp, baseline.cold_fp) << context;
  EXPECT_EQ(out.warm_fp, baseline.warm_fp) << context;
  EXPECT_EQ(out.perm, baseline.perm) << context;
  EXPECT_EQ(out.pr_mass, baseline.pr_mass) << context;
  // Steps that report success must have produced the baseline bits.
  if (out.read_edgelist) {
    EXPECT_EQ(out.roundtrip_fp, baseline.roundtrip_fp) << context;
  }
  if (out.read_binary) {
    EXPECT_EQ(out.binary_fp, baseline.binary_fp) << context;
  }
  if (out.copied_pack) {
    EXPECT_EQ(out.copy_fp, baseline.copy_fp) << context;
  }
  if (out.loaded_ordering) {
    EXPECT_EQ(out.loaded_perm, baseline.perm) << context;
  }
  // An extmem build that reported success must have produced the same
  // graph the text loader read, and a successful semi-external run is
  // bit-identical to the in-memory ordering.
  if (out.ext_packed && out.ext_fp != 0) {
    EXPECT_EQ(out.ext_fp, baseline.ext_fp) << context;
  }
  if (out.ext_ordered) {
    EXPECT_EQ(out.ext_perm, baseline.perm) << context;
  }
  // A daemon that managed to bind must still be serving at the end of
  // the run, whatever single fault was injected along the way. Start()
  // fails outright when the admin listener cannot bind, so a started
  // daemon must also still answer scrapes (the pipeline retries once:
  // a single-shot admin fault may cost the first attempt, never both).
  if (out.serve_started) {
    EXPECT_TRUE(out.serve_alive_after) << context;
    EXPECT_TRUE(out.admin_scraped) << context;
  }
  if (out.serve_queried) {
    EXPECT_EQ(out.serve_nodes, baseline.serve_nodes) << context;
  }
  // Every failure surfaced with a message, not silently.
  for (const std::string& error : out.errors) {
    EXPECT_FALSE(error.empty()) << context << ": empty error message";
  }
}

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kQuiet);  // 100+ narrated runs otherwise
    util::DisarmAllFailpoints();
    util::ResetFailpointCounters();
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("gorder_fault_sweep_") + info->name()))
                .string();
    fs::create_directories(root_);
  }
  void TearDown() override {
    util::DisarmAllFailpoints();
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string FreshDir(const std::string& tag) {
    std::string dir = root_ + "/" + tag;
    fs::create_directories(dir);
    return dir;
  }

  std::string root_;
};

TEST_F(FaultSweepTest, BaselineCoversEveryRegisteredFailpoint) {
  const PipelineOutcome baseline = RunPipeline(FreshDir("baseline"));
  EXPECT_TRUE(baseline.errors.empty())
      << "fault-free pipeline failed: " << baseline.errors.front();
  EXPECT_TRUE(baseline.wrote_edgelist && baseline.read_edgelist);
  EXPECT_TRUE(baseline.wrote_binary && baseline.read_binary);
  EXPECT_TRUE(baseline.copied_pack);
  EXPECT_TRUE(baseline.saved_ordering && baseline.loaded_ordering);
  EXPECT_TRUE(baseline.wrote_trace);
  EXPECT_TRUE(baseline.ext_packed && baseline.ext_ordered);
  EXPECT_EQ(baseline.ext_fp, baseline.roundtrip_fp);
  EXPECT_EQ(baseline.ext_perm, baseline.perm);
  EXPECT_TRUE(baseline.serve_started && baseline.serve_queried &&
              baseline.serve_alive_after && baseline.admin_scraped);
  CheckArtifacts(root_ + "/baseline", baseline);

  // Coverage: a registered point the pipeline never reaches is dead
  // error-handling code — extend the pipeline or remove the point.
  for (const auto& info : util::SnapshotFailpoints()) {
    EXPECT_GT(info.hits, 0u)
        << "failpoint '" << info.name
        << "' was never reached by the sweep pipeline";
  }
}

TEST_F(FaultSweepTest, OneFaultAtATimeDegradesCleanly) {
  const PipelineOutcome baseline = RunPipeline(FreshDir("base"));
  ASSERT_TRUE(baseline.errors.empty())
      << "fault-free pipeline failed: " << baseline.errors.front();
  util::ResetFailpointCounters();

  const std::vector<std::string> names = util::RegisteredFailpoints();
  ASSERT_FALSE(names.empty());
  const char* kinds[] = {"err", "short", "enospc", "oom"};
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> totals;
  int run = 0;
  for (const std::string& name : names) {
    for (const char* kind : kinds) {
      const std::string spec = name + "=" + kind;
      SCOPED_TRACE(spec);
      std::string error;
      ASSERT_TRUE(util::ArmFailpointsFromSpec(spec, &error)) << error;
      const std::string dir = FreshDir("run" + std::to_string(run++));
      const PipelineOutcome out = RunPipeline(dir);
      util::DisarmAllFailpoints();

      // The armed fault must actually have been injected: up to its
      // first hit the run is deterministic and identical to the
      // baseline, which reaches every point.
      for (const auto& info : util::SnapshotFailpoints()) {
        totals[info.name].first += info.hits;
        totals[info.name].second += info.fires;
        if (info.name == name) {
          EXPECT_GE(info.fires, 1u) << "armed fault was never injected";
        }
      }
      CheckInvariants(out, baseline, spec);
      CheckArtifacts(dir, baseline);
      util::ResetFailpointCounters();
      std::error_code ec;
      fs::remove_all(dir, ec);  // bound /tmp usage across 100+ runs
    }
  }

  // A handful of deeper faults: later hits and sticky arming.
  for (const char* spec : {"store.pack_write.write=short@3",
                           "graph.write_edgelist.write=enospc@2",
                           "util.atomic.sync=err@2",
                           "store.map.open=err@1+",
                           "util.atomic.rename=err@1+",
                           "extmem.run.write=short@2",
                           "extmem.merge.read=err@3",
                           "extmem.pack.write=enospc@2",
                           "extmem.pack.sync=err@1+"}) {
    SCOPED_TRACE(spec);
    std::string error;
    ASSERT_TRUE(util::ArmFailpointsFromSpec(spec, &error)) << error;
    const std::string dir = FreshDir("run" + std::to_string(run++));
    const PipelineOutcome out = RunPipeline(dir);
    util::DisarmAllFailpoints();
    CheckInvariants(out, baseline, spec);
    CheckArtifacts(dir, baseline);
    util::ResetFailpointCounters();
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  if (const char* report = std::getenv("GORDER_FAULT_REPORT")) {
    std::ofstream outf(report);
    outf << "failpoint hits fires\n";
    for (const auto& [name, counts] : totals) {
      outf << name << " " << counts.first << " " << counts.second << "\n";
    }
  }
}

#else  // !GORDER_FAILPOINTS_ENABLED

TEST(FaultSweep, FrameworkCompiledOut) {
  GTEST_SKIP() << "build with -DGORDER_FAILPOINTS=ON to run the fault sweep";
}

#endif  // GORDER_FAILPOINTS_ENABLED

}  // namespace
}  // namespace gorder
