// Golden-value pins for the Gorder greedy on the seed datasets: the
// exact objective score F and an FNV-1a fingerprint of the permutation.
// Every cache-layout refactor of the kernel (packed heap slots,
// sentinel bucket lists, lazy occupancy clearing, prefetch batching)
// promises *bit-identical* output — these pins turn that promise into a
// failing test instead of a silent quality drift.
//
// If a change legitimately alters the ordering (a new tie-break rule,
// say), re-derive the constants with
//   ./build/bench/perf_ordering --methods=Gorder \
//       --datasets=epinion,wiki,flickr --scale=... --csv
// and say so loudly in the commit message.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gen/datasets.h"
#include "graph/graph.h"
#include "graph/stats.h"
#include "order/gorder.h"

namespace gorder::order {
namespace {

// Same fingerprint as bench/perf_ordering.cpp: FNV-1a over the
// permutation words.
std::uint64_t PermFingerprint(const std::vector<NodeId>& perm) {
  std::uint64_t h = 1469598103934665603ULL;
  for (NodeId v : perm) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Golden {
  const char* dataset;
  double scale;
  bool lazy;
  std::uint64_t score;  // F(pi, w=5)
  std::uint64_t fnv;
};

// Derived from the pre-refactor greedy (seed 42, window 5) and carried
// unchanged through the packed-slot kernel.
constexpr Golden kGoldens[] = {
    {"epinion", 0.10, false, 5477, 0xd86e7b3375554f3dULL},
    {"wiki", 0.10, false, 33220, 0x4b0629fdf7e37b9bULL},
    {"flickr", 0.15, false, 22241, 0x31587a5e0fe55a53ULL},
    {"epinion", 0.10, true, 5492, 0x7627bcbd6f086d59ULL},
    {"wiki", 0.10, true, 33349, 0xa5f8b1d0622feb67ULL},
    {"flickr", 0.15, true, 22202, 0x84f6650a1cbd6305ULL},
};

TEST(GorderGoldenTest, ScoresAndFingerprintsMatchPreRefactorKernel) {
  for (const Golden& g : kGoldens) {
    Graph graph = gen::MakeDataset(g.dataset, g.scale);
    OrderingParams params;
    params.gorder_lazy_decrements = g.lazy;
    auto perm = GorderOrder(graph, params);
    CheckPermutation(perm, graph.NumNodes());
    EXPECT_EQ(GorderScoreUnderPermutation(graph, perm, 5), g.score)
        << g.dataset << "@" << g.scale << (g.lazy ? " lazy" : " eager");
    EXPECT_EQ(PermFingerprint(perm), g.fnv)
        << g.dataset << "@" << g.scale << (g.lazy ? " lazy" : " eager");
  }
}

}  // namespace
}  // namespace gorder::order
