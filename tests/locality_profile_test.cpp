#include "graph/locality_profile.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "order/ordering.h"
#include "util/rng.h"

namespace gorder {
namespace {

TEST(LocalityProfileTest, PathGraphAllUnitGaps) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 100; ++v) edges.push_back({v, v + 1});
  Graph g = Graph::FromEdges(100, std::move(edges));
  auto p = ComputeLocalityProfile(g);
  EXPECT_EQ(p.num_edges, 99u);
  EXPECT_DOUBLE_EQ(p.avg_gap, 1.0);
  EXPECT_EQ(p.bandwidth, 1u);
  EXPECT_EQ(p.gap_histogram[0], 99u);  // all gaps == 1
  EXPECT_DOUBLE_EQ(p.same_line_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.within_window5, 1.0);
}

TEST(LocalityProfileTest, SingleFarEdge) {
  Graph g = Graph::FromEdges(1025, {{0, 1024}});
  auto p = ComputeLocalityProfile(g);
  EXPECT_DOUBLE_EQ(p.avg_gap, 1024.0);
  EXPECT_EQ(p.bandwidth, 1024u);
  EXPECT_EQ(p.gap_histogram[10], 1u);  // 1024 = 2^10
  EXPECT_DOUBLE_EQ(p.same_line_fraction, 0.0);
  EXPECT_DOUBLE_EQ(p.within_window1024, 1.0);  // gap <= 1024 inclusive
  EXPECT_DOUBLE_EQ(p.within_window5, 0.0);
}

TEST(LocalityProfileTest, EmptyGraphSafe) {
  Graph g;
  auto p = ComputeLocalityProfile(g);
  EXPECT_EQ(p.num_edges, 0u);
  EXPECT_EQ(p.avg_gap, 0.0);
  EXPECT_EQ(p.CumulativeBelow(10), 0.0);
}

TEST(LocalityProfileTest, HistogramSumsToEdges) {
  Graph g = gen::MakeDataset("flickr", 0.1);
  auto p = ComputeLocalityProfile(g);
  std::uint64_t total = 0;
  for (auto c : p.gap_histogram) total += c;
  EXPECT_EQ(total, g.NumEdges());
}

TEST(LocalityProfileTest, CumulativeMonotone) {
  Graph g = gen::MakeDataset("wiki", 0.1);
  auto p = ComputeLocalityProfile(g);
  double prev = 0.0;
  for (int i = 0; i <= 32; ++i) {
    double c = p.CumulativeBelow(i);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(p.CumulativeBelow(33), 1.0, 1e-12);
}

TEST(LocalityProfileTest, GorderImprovesEveryMetricOverRandom) {
  Graph g = gen::MakeDataset("wiki", 0.15);
  auto profile_of = [&](order::Method m) {
    auto perm = order::ComputeOrdering(g, m, {});
    return ComputeLocalityProfile(g.Relabel(perm));
  };
  auto random = profile_of(order::Method::kRandom);
  auto gorder = profile_of(order::Method::kGorder);
  EXPECT_LT(gorder.avg_log2_gap, random.avg_log2_gap);
  EXPECT_GT(gorder.same_line_fraction, random.same_line_fraction);
  EXPECT_GT(gorder.within_window1024, random.within_window1024);
}

}  // namespace
}  // namespace gorder
