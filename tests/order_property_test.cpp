// Property sweep over (ordering method x graph family x seed): the
// invariants every ordering must satisfy on every input —
//   1. output is a valid permutation,
//   2. computation is deterministic in (graph, params),
//   3. relabelling preserves the edge multiset (degree sequences match),
//   4. order-invariant algorithm results survive the relabel.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "algo/algorithms.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "order/ordering.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

Graph MakeFamily(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "er") return gen::ErdosRenyi(500, 2200, rng);
  if (family == "ba") return gen::BarabasiAlbert(600, 4, rng);
  if (family == "rmat") return gen::Rmat({9, 4500, 0.6, 0.18, 0.18}, rng);
  if (family == "web") return gen::CopyingModel(550, 6, 0.6, rng);
  if (family == "smallworld") return gen::WattsStrogatz(500, 3, 0.05, rng);
  if (family == "powerlaw") {
    return gen::PowerLawConfigurationGraph(600, 2.3, 2, 60, rng);
  }
  GORDER_CHECK(false);
  __builtin_unreachable();
}

using SweepParam = std::tuple<Method, const char*, int>;

class OrderingSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OrderingSweepTest, Invariants) {
  auto [method, family, seed] = GetParam();
  Graph g = MakeFamily(family, seed);
  OrderingParams params;
  params.seed = 7 + seed;
  params.sa_steps = 1500;  // keep annealing cheap in the sweep

  auto perm = ComputeOrdering(g, method, params);
  CheckPermutation(perm, g.NumNodes());

  // Determinism.
  EXPECT_EQ(perm, ComputeOrdering(g, method, params));

  // Structural preservation under relabel.
  Graph h = g.Relabel(perm);
  EXPECT_EQ(h.NumNodes(), g.NumNodes());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  std::vector<NodeId> deg_g(g.NumNodes()), deg_h(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    deg_g[v] = g.OutDegree(v);
    deg_h[v] = h.OutDegree(v);
    EXPECT_EQ(g.OutDegree(v), h.OutDegree(perm[v]));
    EXPECT_EQ(g.InDegree(v), h.InDegree(perm[v]));
  }
  std::sort(deg_g.begin(), deg_g.end());
  std::sort(deg_h.begin(), deg_h.end());
  EXPECT_EQ(deg_g, deg_h);

  // Algorithmic invariants.
  EXPECT_EQ(algo::Nq(g).checksum, algo::Nq(h).checksum);
  EXPECT_EQ(algo::KCore(g).max_core, algo::KCore(h).max_core);
  EXPECT_EQ(algo::Scc(g).num_components, algo::Scc(h).num_components);
}

std::string SweepName(
    const ::testing::TestParamInfo<SweepParam>& info) {
  return MethodName(std::get<0>(info.param)) + std::string("_") +
         std::get<1>(info.param) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    MethodFamilySeed, OrderingSweepTest,
    ::testing::Combine(::testing::ValuesIn(AllMethodsExtended()),
                       ::testing::Values("er", "ba", "rmat", "web",
                                         "smallworld", "powerlaw"),
                       ::testing::Values(1, 2)),
    SweepName);

// Locality sanity: every non-Random method should beat Random on at
// least one locality metric on a structured graph.
class LocalityBeatsRandomTest : public ::testing::TestWithParam<Method> {};

TEST_P(LocalityBeatsRandomTest, SomeMetricImproves) {
  Method method = GetParam();
  if (method == Method::kRandom) GTEST_SKIP();
  Graph g = MakeFamily("web", 3);
  OrderingParams params;
  params.sa_steps = 30000;
  auto perm = ComputeOrdering(g, method, params);
  Rng rng(11);
  auto rnd = RandomOrder(g, rng);
  Graph h_m = g.Relabel(perm);
  Graph h_r = g.Relabel(rnd);
  bool beats = LinearArrangementCost(h_m) < LinearArrangementCost(h_r) ||
               LogArrangementCost(h_m) < LogArrangementCost(h_r) ||
               GorderScore(h_m, 5) > GorderScore(h_r, 5);
  EXPECT_TRUE(beats) << MethodName(method);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, LocalityBeatsRandomTest,
                         ::testing::ValuesIn(AllMethodsExtended()),
                         [](const auto& info) {
                           return MethodName(info.param);
                         });

}  // namespace
}  // namespace gorder::order
