// src/extmem edge cases: the external CSR build must be byte-identical
// to store::WritePack of the equivalent in-memory graph in every corner
// — empty graphs, reserved isolated nodes, single-run and multi-run
// builds, run boundaries landing inside one vertex's adjacency,
// duplicates and self-loops scattered across chunks, and forced
// multi-pass merges. Plus the streaming ingest (text edge lists,
// chunked R-MAT) and the windowed mmap writer underneath it all.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string("gorder_extmem_") + info->test_suite_name() +
                     "_" + info->name() + "_" + tag;
  for (char& c : name) {
    if (c == '/' || c == '\\') c = '_';
  }
  return (fs::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Builds a pack with ExtPackBuilder from `edges` (fed in the given
/// order) and asserts it is byte-identical to WritePack of the
/// equivalent in-memory graph.
void ExpectPackIdentical(const std::vector<Edge>& edges, NodeId reserve_nodes,
                         const extmem::ExtmemOptions& options,
                         extmem::ExtBuildStats* stats_out = nullptr) {
  TempFile ext_pack(TempPath("ext.gpack"));
  TempFile mem_pack(TempPath("mem.gpack"));

  extmem::ExtPackBuilder builder(options);
  ASSERT_TRUE(builder.Begin(ext_pack.path).ok);
  if (reserve_nodes > 0) builder.ReserveNodes(reserve_nodes);
  for (const Edge& e : edges) ASSERT_TRUE(builder.Add(e.src, e.dst).ok);
  IoResult r = builder.Finish();
  ASSERT_TRUE(r.ok) << r.error;
  if (stats_out != nullptr) *stats_out = builder.stats();

  Graph::Builder mem_builder(reserve_nodes);
  for (const Edge& e : edges) mem_builder.AddEdge(e.src, e.dst);
  const Graph graph = mem_builder.Build();
  ASSERT_TRUE(store::WritePack(mem_pack.path, graph).ok);

  const std::string ext_bytes = ReadAll(ext_pack.path);
  const std::string mem_bytes = ReadAll(mem_pack.path);
  ASSERT_EQ(ext_bytes.size(), mem_bytes.size());
  EXPECT_TRUE(ext_bytes == mem_bytes)
      << "extmem pack differs from in-memory pack";

  // The pack must also verify end-to-end (CRCs + fingerprint).
  EXPECT_TRUE(store::VerifyPack(ext_pack.path).ok);

  // No scratch debris may survive a successful build.
  const fs::path dir = fs::path(ext_pack.path).parent_path();
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(
                  fs::path(ext_pack.path).filename().string() + ".fwd"),
              std::string::npos)
        << "leftover scratch: " << entry.path();
  }
}

extmem::ExtmemOptions TinyOptions(std::size_t run_buffer_edges,
                                  std::size_t fanin = 64) {
  extmem::ExtmemOptions options;
  options.mem_budget_bytes = 4ull << 20;
  options.run_buffer_edges = run_buffer_edges;
  options.merge_fanin = fanin;
  return options;
}

TEST(ExtCsrTest, EmptyGraph) {
  ExpectPackIdentical({}, 0, TinyOptions(8));
}

TEST(ExtCsrTest, ReservedIsolatedNodes) {
  ExpectPackIdentical({}, 7, TinyOptions(8));
}

TEST(ExtCsrTest, SelfLoopOnlyGrowsNodeCount) {
  // (7,7) is dropped but must still make the graph 8 nodes — exactly
  // Graph::Builder's AddEdge-then-strip semantics.
  ExpectPackIdentical({{7, 7}}, 0, TinyOptions(8));
}

TEST(ExtCsrTest, SingleChunkSmallGraph) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 0}};
  ExpectPackIdentical(edges, 0, TinyOptions(1024));
}

TEST(ExtCsrTest, ChunkBoundaryInsideOneVertexAdjacency) {
  // A star whose adjacency list spans many runs: node 0 has 23
  // out-neighbors fed in descending order with a 4-edge run buffer, so
  // every run boundary lands inside node 0's adjacency and the merge
  // must reassemble the sorted list across runs.
  std::vector<Edge> edges;
  for (NodeId v = 23; v >= 1; --v) edges.push_back({0, v});
  extmem::ExtBuildStats stats;
  ExpectPackIdentical(edges, 0, TinyOptions(4), &stats);
  EXPECT_GE(stats.runs_written, 5u);
}

TEST(ExtCsrTest, DuplicatesAndSelfLoopsAcrossChunks) {
  // Duplicates of the same edge land in different runs (buffer 3), with
  // self-loops interleaved; dedup + loop-strip must match FromEdges.
  std::vector<Edge> edges;
  for (int rep = 0; rep < 6; ++rep) {
    edges.push_back({1, 2});
    edges.push_back({static_cast<NodeId>(rep % 4), static_cast<NodeId>(rep % 4)});
    edges.push_back({2, 1});
    edges.push_back({0, 3});
  }
  extmem::ExtBuildStats stats;
  ExpectPackIdentical(edges, 0, TinyOptions(3), &stats);
  EXPECT_GT(stats.runs_written, 1u);
  EXPECT_EQ(stats.edges_final, 3u);  // {1,2},{2,1},{0,3}
}

TEST(ExtCsrTest, MultiPassMergeCompaction) {
  // fanin 2 with a 4-edge buffer over a shuffled 600-edge stream forces
  // several compaction passes; output must still be byte-identical.
  std::vector<Edge> edges;
  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    edges.push_back({static_cast<NodeId>(rng.Uniform(40)),
                     static_cast<NodeId>(rng.Uniform(40))});
  }
  extmem::ExtBuildStats stats;
  ExpectPackIdentical(edges, 0, TinyOptions(4, 2), &stats);
  EXPECT_GT(stats.merge_passes, 0u);
}

TEST(ExtCsrTest, LargerShuffledGraphWithTinyBudget) {
  std::vector<Edge> edges;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    edges.push_back({static_cast<NodeId>(rng.Uniform(500)),
                     static_cast<NodeId>(rng.Uniform(500))});
  }
  ExpectPackIdentical(edges, 0, TinyOptions(512, 4));
}

// ---------------------------------------------------------------------------
// Text edge-list streaming ingest

TEST(EdgeListStreamTest, MatchesReadEdgeList) {
  TempFile txt(TempPath("graph.txt"));
  {
    std::ofstream out(txt.path);
    out << "# comment header\n";
    out << "0 1\n1 2\n% konect comment\n2 0\n";
    out << "  3\t4  trailing junk\n";
    out << "4 4\n";  // self-loop
    out << "1 2\n";  // duplicate
  }
  Graph expected;
  ASSERT_TRUE(ReadEdgeList(txt.path, &expected).ok);

  std::vector<Edge> streamed;
  NodeId max_node = 0;
  bool saw_node = false;
  IoResult r = extmem::EdgeListStreamer::Stream(
      txt.path,
      [&](const Edge* edges, std::size_t count) {
        streamed.insert(streamed.end(), edges, edges + count);
        return IoResult::Ok();
      },
      &max_node, &saw_node);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(saw_node);
  EXPECT_EQ(max_node, 4u);
  const Graph via_stream =
      Graph::FromEdges(max_node + 1, std::move(streamed));
  EXPECT_EQ(expected.out_offsets(), via_stream.out_offsets());
  EXPECT_EQ(expected.out_neighbors(), via_stream.out_neighbors());
}

TEST(EdgeListStreamTest, ReportsLineNumberOnError) {
  TempFile txt(TempPath("bad.txt"));
  {
    std::ofstream out(txt.path);
    out << "0 1\n1 2\nnot an edge\n2 3\n";
  }
  IoResult r = extmem::EdgeListStreamer::Stream(
      txt.path,
      [&](const Edge*, std::size_t) { return IoResult::Ok(); });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find(":3:"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("malformed"), std::string::npos) << r.error;
}

TEST(EdgeListStreamTest, StreamToPackMatchesInMemoryPipeline) {
  TempFile txt(TempPath("graph.txt"));
  {
    std::ofstream out(txt.path);
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
      out << rng.Uniform(300) << ' ' << rng.Uniform(300) << '\n';
    }
  }
  TempFile ext_pack(TempPath("ext.gpack"));
  TempFile mem_pack(TempPath("mem.gpack"));
  extmem::ExtBuildStats stats;
  IoResult r = extmem::StreamEdgeListToPack(txt.path, ext_pack.path,
                                            TinyOptions(777), &stats);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(stats.edges_ingested, 5000u);

  Graph graph;
  ASSERT_TRUE(ReadEdgeList(txt.path, &graph).ok);
  ASSERT_TRUE(store::WritePack(mem_pack.path, graph).ok);
  EXPECT_TRUE(ReadAll(ext_pack.path) == ReadAll(mem_pack.path));
}

// ---------------------------------------------------------------------------
// Windowed writer

TEST(WindowedWriterTest, SlidingWindowWritesWholeFile) {
  TempFile file(TempPath("windowed.bin"));
  const std::size_t total = 256 * 1024 + 123;
  std::string expect(total, '\0');
  for (std::size_t i = 0; i < total; ++i) {
    expect[i] = static_cast<char>((i * 131) & 0xFF);
  }
  extmem::WindowedWriter writer;
  // A 4KB window forces many remaps over 256KB.
  ASSERT_TRUE(writer.Create(file.path, total, 4096).ok);
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < total) {
    const std::size_t n = std::min(step, total - pos);
    ASSERT_TRUE(writer.WriteAt(pos, expect.data() + pos, n).ok);
    pos += n;
    step = step * 3 % 9973 + 1;  // varied, sometimes window-crossing sizes
  }
  // Out-of-order fixup write (the header path of the pack builder).
  ASSERT_TRUE(writer.WriteAt(0, expect.data(), 64).ok);
  ASSERT_TRUE(writer.Sync().ok);
  writer.Close();
  EXPECT_GT(writer.window_remaps(), 10u);
  EXPECT_TRUE(ReadAll(file.path) == expect);
}

TEST(WindowedWriterTest, RejectsWritePastEnd) {
  TempFile file(TempPath("short.bin"));
  extmem::WindowedWriter writer;
  ASSERT_TRUE(writer.Create(file.path, 100, 4096).ok);
  char byte = 1;
  EXPECT_FALSE(writer.WriteAt(100, &byte, 1).ok);
  EXPECT_TRUE(writer.WriteAt(99, &byte, 1).ok);
}

TEST(WindowedWriterTest, UntouchedRangesReadBackAsZeros) {
  TempFile file(TempPath("sparse.bin"));
  extmem::WindowedWriter writer;
  ASSERT_TRUE(writer.Create(file.path, 64 * 1024, 8192).ok);
  const char marker[4] = {'x', 'y', 'z', 'w'};
  ASSERT_TRUE(writer.WriteAt(60000, marker, sizeof marker).ok);
  ASSERT_TRUE(writer.Sync().ok);
  writer.Close();
  const std::string bytes = ReadAll(file.path);
  ASSERT_EQ(bytes.size(), 64u * 1024);
  EXPECT_EQ(bytes[0], '\0');
  EXPECT_EQ(bytes[59999], '\0');
  EXPECT_EQ(bytes[60000], 'x');
  EXPECT_EQ(bytes[60003], 'w');
}

// ---------------------------------------------------------------------------
// Chunked R-MAT

TEST(StreamRmatTest, DeterministicAndInRange) {
  gen::RmatParams params;
  params.scale = 10;
  params.num_edges = 5000;
  auto collect = [&](std::size_t chunk_edges) {
    std::vector<Edge> edges;
    IoResult r = gen::StreamRmat(params, 42, chunk_edges,
                                 [&](const Edge* e, std::size_t n) {
                                   edges.insert(edges.end(), e, e + n);
                                   return IoResult::Ok();
                                 });
    EXPECT_TRUE(r.ok);
    return edges;
  };
  const auto a = collect(512);
  const auto b = collect(512);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b) << "StreamRmat not deterministic";
  EXPECT_FALSE(a.empty());
  for (const Edge& e : a) {
    EXPECT_LT(e.src, 1u << 10);
    EXPECT_LT(e.dst, 1u << 10);
    EXPECT_NE(e.src, e.dst);  // self-loop attempts skipped
  }
}

TEST(StreamRmatTest, StreamsIntoExtmemPackBitIdentically) {
  gen::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  const NodeId n = static_cast<NodeId>(1) << params.scale;

  TempFile ext_pack(TempPath("rmat_ext.gpack"));
  TempFile mem_pack(TempPath("rmat_mem.gpack"));

  extmem::ExtPackBuilder builder(TinyOptions(777));
  ASSERT_TRUE(builder.Begin(ext_pack.path).ok);
  builder.ReserveNodes(n);
  Graph::Builder mem_builder(n);
  IoResult r = gen::StreamRmat(params, 11, 600,
                               [&](const Edge* e, std::size_t count) {
                                 for (std::size_t i = 0; i < count; ++i) {
                                   mem_builder.AddEdge(e[i].src, e[i].dst);
                                 }
                                 return builder.AddBatch(e, count);
                               });
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(builder.Finish().ok);
  ASSERT_TRUE(store::WritePack(mem_pack.path, mem_builder.Build()).ok);
  EXPECT_TRUE(ReadAll(ext_pack.path) == ReadAll(mem_pack.path));
}

TEST(StreamRmatTest, PropagatesSinkError) {
  gen::RmatParams params;
  params.scale = 8;
  params.num_edges = 10000;
  int calls = 0;
  IoResult r = gen::StreamRmat(params, 1, 100,
                               [&](const Edge*, std::size_t) {
                                 return ++calls >= 3
                                            ? IoResult::Error("sink full")
                                            : IoResult::Ok();
                               });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "sink full");
  EXPECT_EQ(calls, 3);
}

// ---------------------------------------------------------------------------
// Memory estimates

TEST(MemoryEstimateTest, TracksGraphSize) {
  const auto small = extmem::EstimateMemory(1000, 10000);
  const auto big = extmem::EstimateMemory(1000000, 10000000);
  EXPECT_GT(small.pack_file_bytes, 0u);
  EXPECT_GT(big.pack_file_bytes, small.pack_file_bytes);
  EXPECT_GT(big.copy_load_bytes, small.copy_load_bytes);
  EXPECT_GT(big.inmem_build_peak_bytes, big.copy_load_bytes);
  EXPECT_GT(big.gorder_state_bytes, 0u);
  // The estimate of the mapped pack must match the real file layout.
  EXPECT_EQ(small.pack_file_bytes,
            store::ComputeGpackLayout(1000, 10000).file_bytes);
}

}  // namespace
}  // namespace gorder
