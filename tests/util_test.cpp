#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <vector>

#include "util/flags.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace gorder {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(bound), static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(SplitMixTest, KnownFirstValueNonZero) {
  SplitMix64 sm(0);
  EXPECT_NE(sm.Next(), 0u);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());  // millis is 1000x seconds
}

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.14159, 0), "3");
}

TEST(TableTest, FormatsDurations) {
  EXPECT_EQ(TablePrinter::Duration(0.004), "4ms");
  EXPECT_EQ(TablePrinter::Duration(3.0), "3.0s");
  EXPECT_EQ(TablePrinter::Duration(120.0), "2.0m");
  EXPECT_EQ(TablePrinter::Duration(7200.0), "2.0h");
}

TEST(TableTest, FormatsCounts) {
  EXPECT_EQ(TablePrinter::Count(999), "999");
  EXPECT_EQ(TablePrinter::Count(31e6), "31.0M");
  EXPECT_EQ(TablePrinter::Count(1.94e9), "1.94G");
}

TEST(TableTest, RowsPadToHeader) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FlagsTest, ParsesKeyValueAndBools) {
  const char* argv[] = {"prog", "--scale=2.5", "--name=pokec", "--csv",
                        "--iters=42"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 2.5);
  EXPECT_EQ(flags.GetString("name", ""), "pokec");
  EXPECT_TRUE(flags.GetBool("csv", false));
  EXPECT_EQ(flags.GetInt("iters", 0), 42);
  EXPECT_EQ(flags.GetInt("absent", 7), 7);
  EXPECT_FALSE(flags.Has("absent"));
}

TEST(FlagsTest, ExplicitFalse) {
  const char* argv[] = {"prog", "--verbose=false"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.GetBool("verbose", true));
}

TEST(FlagsTest, ParsesIntList) {
  const char* argv[] = {"prog", "--threads=1,2,8"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetIntList("threads", {4}),
            (std::vector<int>{1, 2, 8}));
  EXPECT_EQ(flags.GetIntList("absent", {1, 2}), (std::vector<int>{1, 2}));
  const char* single[] = {"prog", "--threads=4"};
  Flags f2(2, const_cast<char**>(single));
  EXPECT_EQ(f2.GetIntList("threads", {}), (std::vector<int>{4}));
}

TEST(FlagsDeathTest, RejectsTruncatedInteger) {
  // Historically `--threads=4x` silently parsed as 4; it must now fail
  // loudly, like unknown positional arguments do.
  const char* argv[] = {"prog", "--threads=4x"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetInt("threads", 1), testing::ExitedWithCode(2),
              "flag --threads: '4x' is not a valid integer");
}

TEST(FlagsDeathTest, RejectsNonNumericInteger) {
  const char* argv[] = {"prog", "--iters=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetInt("iters", 1), testing::ExitedWithCode(2),
              "flag --iters: 'abc' is not a valid integer");
}

TEST(FlagsDeathTest, RejectsEmptyIntegerValue) {
  const char* argv[] = {"prog", "--iters="};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetInt("iters", 1), testing::ExitedWithCode(2),
              "not a valid integer");
}

TEST(FlagsDeathTest, RejectsTruncatedDouble) {
  const char* argv[] = {"prog", "--scale=0.5pt"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetDouble("scale", 1.0), testing::ExitedWithCode(2),
              "flag --scale: '0.5pt' is not a valid number");
}

TEST(FlagsDeathTest, RejectsBadIntListElement) {
  const char* argv[] = {"prog", "--threads=1,2x,4"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetIntList("threads", {}), testing::ExitedWithCode(2),
              "flag --threads: '2x' is not a valid integer");
}

TEST(FlagsDeathTest, RejectsEmptyIntListElement) {
  const char* argv[] = {"prog", "--threads=1,,4"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetIntList("threads", {}), testing::ExitedWithCode(2),
              "not a valid integer");
}

TEST(ParseInt64Test, AcceptsWholeNumbersOnly) {
  std::int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));  // overflow
  EXPECT_EQ(v, -7);  // untouched on failure
}

// Regression: GORDER_THREADS was parsed with std::atoi, so "4x" silently
// ran with 4 threads and "two" silently fell back to the hardware
// default — a typo'd env var quietly changed the experiment. Malformed
// or non-positive values must now be fatal, exactly like --threads.
TEST(ParallelEnvDeathTest, RejectsMalformedGorderThreads) {
  EXPECT_EXIT(
      {
        setenv("GORDER_THREADS", "4x", 1);
        SetNumThreads(0);  // forces re-resolution from the environment
      },
      testing::ExitedWithCode(2),
      "GORDER_THREADS: '4x' is not a positive integer");
  EXPECT_EXIT(
      {
        setenv("GORDER_THREADS", "0", 1);
        SetNumThreads(0);
      },
      testing::ExitedWithCode(2),
      "GORDER_THREADS: '0' is not a positive integer");
  EXPECT_EXIT(
      {
        setenv("GORDER_THREADS", "-3", 1);
        SetNumThreads(0);
      },
      testing::ExitedWithCode(2),
      "GORDER_THREADS: '-3' is not a positive integer");
}

}  // namespace
}  // namespace gorder
