// Compiled with GORDER_OBS_DISABLED (see tests/CMakeLists.txt) while the
// rest of the obs_test binary is not: proves the instrumentation macros
// expand to nothing — no registration, no code — in an opted-out TU that
// still links against the fully-enabled library.

#include "obs/expo.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef GORDER_OBS_DISABLED
#error "this TU must be compiled with GORDER_OBS_DISABLED"
#endif

namespace gorder::obs_disabled_probe {

namespace {
GORDER_OBS_COUNTER(c_probe, "obs_disabled_test.counter");
GORDER_OBS_GAUGE(g_probe, "obs_disabled_test.gauge");
GORDER_OBS_HISTOGRAM(h_probe, "obs_disabled_test.hist");
GORDER_OBS_WINDOWED(w_probe, "obs_disabled_test.windowed");
}  // namespace

void RunDisabledProbe() {
  GORDER_OBS_SPAN(span, "obs_disabled_test.span");
  for (int i = 0; i < 1000; ++i) {
    GORDER_OBS_INC(c_probe);
    GORDER_OBS_ADD(c_probe, 2);
    GORDER_OBS_SET(g_probe, i);
    GORDER_OBS_OBSERVE(h_probe, static_cast<std::uint64_t>(i));
    GORDER_OBS_WRECORD(w_probe, static_cast<std::uint64_t>(i));
  }
}

}  // namespace gorder::obs_disabled_probe
