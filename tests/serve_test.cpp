// End-to-end behaviour of the gorderd server core (src/serve/server.h):
// every opcode against a live unix-socket server compared with direct
// library calls, every error status a client can provoke, admission
// control (deterministic kOverloaded via the execute hook), artifact
// hot-swap through the protocol, connection caps, tcp:0 ephemeral
// binding, and the shutdown handshake.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder::serve {
namespace {

namespace fs = std::filesystem;

util::NetAddress UnixAddr(const std::string& path) {
  util::NetAddress a;
  a.is_unix = true;
  a.path = path;
  return a;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    sock_path_ = "/tmp/gorder_serve_" + std::to_string(::getpid()) + "_" +
                 info->name() + ".sock";
    graph_ = gen::MakeDataset("epinion", 0.05, 1);
  }

  void TearDown() override {
    if (server_) server_->Stop();
    std::error_code ec;
    fs::remove(sock_path_, ec);
  }

  /// Starts the server on the per-test unix socket; `graph_` stays
  /// usable as the library-side reference (the server gets a clone).
  void StartServer(ServerOptions opts = {}) {
    opts.listen = UnixAddr(sock_path_);
    server_ = std::make_unique<Server>(graph_.Clone(), opts);
    IoResult r = server_->Start();
    ASSERT_TRUE(r.ok) << r.error;
  }

  Client Connected() {
    Client client;
    IoResult r = client.Connect(UnixAddr(sock_path_), 30.0);
    EXPECT_TRUE(r.ok) << r.error;
    return client;
  }

  std::string sock_path_;
  Graph graph_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, PingCarriesEpochOne) {
  StartServer();
  Client client = Connected();
  Reply reply = client.Ping();
  EXPECT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.epoch, 1u);
  EXPECT_EQ(server_->Epoch(), 1u);
}

TEST_F(ServeTest, InfoMatchesGraph) {
  ServerOptions opts;
  opts.serve_threads = 3;
  StartServer(opts);
  Client client = Connected();
  InfoReply info = client.Info();
  ASSERT_TRUE(info.ok()) << info.error;
  EXPECT_EQ(info.num_nodes, graph_.NumNodes());
  EXPECT_EQ(info.num_edges, graph_.NumEdges());
  EXPECT_EQ(info.serve_threads, 3u);
  EXPECT_EQ(info.protocol_version, kProtocolVersion);
}

TEST_F(ServeTest, DegreeAndNeighborsMatchLibraryOnEveryNode) {
  StartServer();
  Client client = Connected();
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    DegreeReply d = client.Degree(v);
    ASSERT_TRUE(d.ok()) << d.error;
    EXPECT_EQ(d.out_degree, graph_.OutDegree(v)) << "node " << v;
    EXPECT_EQ(d.in_degree, graph_.InDegree(v)) << "node " << v;

    NeighborsReply n = client.Neighbors(v);
    ASSERT_TRUE(n.ok()) << n.error;
    auto expect = graph_.OutNeighbors(v);
    ASSERT_EQ(n.neighbors.size(), expect.size()) << "node " << v;
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                           n.neighbors.begin()))
        << "node " << v;
  }
}

TEST_F(ServeTest, BfsAndSpMatchLibrary) {
  StartServer();
  Client client = Connected();
  const NodeId n = graph_.NumNodes();
  for (NodeId src : {NodeId{0}, NodeId{1}, n / 2, n - 1}) {
    algo::BfsResult bl = algo::Bfs(graph_, src);
    BfsReply bw = client.Bfs(src);
    ASSERT_TRUE(bw.ok()) << bw.error;
    EXPECT_EQ(bw.num_reached, bl.num_reached) << "src " << src;
    EXPECT_EQ(bw.sum_levels, bl.sum_levels) << "src " << src;
    EXPECT_EQ(bw.level_hash, HashVector64(bl.level)) << "src " << src;

    algo::SpResult sl = algo::Sp(graph_, src);
    SpReply sw = client.Sp(src);
    ASSERT_TRUE(sw.ok()) << sw.error;
    EXPECT_EQ(sw.num_reached, sl.num_reached) << "src " << src;
    EXPECT_EQ(sw.max_dist, sl.max_dist) << "src " << src;
    EXPECT_EQ(sw.num_rounds, sl.num_rounds) << "src " << src;
    EXPECT_EQ(sw.dist_hash, HashVector64(sl.dist)) << "src " << src;
  }
}

TEST_F(ServeTest, PageRankTopKMatchesLibraryBitExactly) {
  StartServer();
  Client client = Connected();
  const std::uint32_t k = 10, iters = 5;
  PageRankTopKReply w = client.PageRankTopK(k, iters);
  ASSERT_TRUE(w.ok()) << w.error;

  algo::PageRankResult r = algo::PageRank(graph_, static_cast<int>(iters));
  EXPECT_EQ(w.total_mass, r.total_mass);  // bit-identical, not approximate
  const NodeId n = graph_.NumNodes();
  std::vector<NodeId> idx(n);
  for (NodeId v = 0; v < n; ++v) idx[v] = v;
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&r](NodeId a, NodeId b) {
                      if (r.rank[a] != r.rank[b]) return r.rank[a] > r.rank[b];
                      return a < b;
                    });
  ASSERT_EQ(w.top.size(), k);
  for (std::uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(w.top[i].first, idx[i]) << "rank " << i;
    EXPECT_EQ(w.top[i].second, r.rank[idx[i]]) << "rank " << i;
  }
}

TEST_F(ServeTest, OrderMatchesLocalComputeOrdering) {
  StartServer();
  Client client = Connected();
  // A small uploaded graph: binary-tree spine plus a few cross edges.
  std::vector<Edge> edges;
  for (NodeId v = 1; v < 40; ++v) edges.push_back({v / 2, v});
  edges.push_back({7, 3});
  edges.push_back({11, 39});
  const NodeId n = 40;
  for (const char* name : {"Gorder", "BOBA", "RCM"}) {
    order::Method method{};
    bool found = false;
    for (order::Method m : order::AllMethodsExtended()) {
      if (std::string(order::MethodName(m)) == name) {
        method = m;
        found = true;
      }
    }
    ASSERT_TRUE(found) << name;

    OrderReply w = client.Order(name, 123, n, edges);
    ASSERT_TRUE(w.ok()) << name << ": " << w.error;
    Graph uploaded = Graph::FromEdges(n, edges);
    order::OrderingParams params;
    params.seed = 123;
    EXPECT_EQ(w.perm, order::ComputeOrdering(uploaded, method, params))
        << name;
  }
}

TEST_F(ServeTest, ErrorStatusesCoverEveryFailureClass) {
  ServerOptions opts;
  opts.max_topk = 8;
  opts.max_iterations = 16;
  opts.max_order_nodes = 64;
  StartServer(opts);
  Client client = Connected();
  const NodeId n = graph_.NumNodes();

  // kBadRequest: node out of range, on every node-taking opcode.
  EXPECT_EQ(client.Degree(n).status, Status::kBadRequest);
  EXPECT_EQ(client.Neighbors(n + 5).status, Status::kBadRequest);
  EXPECT_EQ(client.Bfs(n).status, Status::kBadRequest);
  EXPECT_EQ(client.Sp(0xFFFFFFFFu).status, Status::kBadRequest);
  // kBadRequest: parameter caps.
  EXPECT_EQ(client.PageRankTopK(0, 5).status, Status::kBadRequest);
  EXPECT_EQ(client.PageRankTopK(9, 5).status, Status::kBadRequest);
  EXPECT_EQ(client.PageRankTopK(4, 0).status, Status::kBadRequest);
  EXPECT_EQ(client.PageRankTopK(4, 17).status, Status::kBadRequest);
  // kBadRequest: kOrder caps and validation.
  std::vector<Edge> edges = {{0, 1}};
  EXPECT_EQ(client.Order("Gorder", 1, 65, edges).status, Status::kBadRequest);
  EXPECT_EQ(client.Order("NoSuchMethod", 1, 4, edges).status,
            Status::kBadRequest);
  EXPECT_EQ(client.Order("Gorder", 1, 1, edges).status, Status::kBadRequest)
      << "edge endpoint out of range";
  // kInternal: swap to a path that cannot be loaded.
  Reply swap = client.SwapPack("/nonexistent/gorder.gpack");
  EXPECT_EQ(swap.status, Status::kInternal);
  EXPECT_FALSE(swap.error.empty());
  // kBadOpcode via a raw frame (the typed client cannot send one).
  std::string frame;
  PutU32(&frame, 12);
  PutU64(&frame, 9);
  PutU16(&frame, 999);
  PutU16(&frame, 0);
  EXPECT_EQ(client.Call(frame).status, Status::kBadOpcode);
  // kBadFrame via nonzero reserved bits.
  frame.clear();
  PutU32(&frame, 12);
  PutU64(&frame, 10);
  PutU16(&frame, 1);
  PutU16(&frame, 7);
  EXPECT_EQ(client.Call(frame).status, Status::kBadFrame);
  // Every error body carried a message; the stream survived it all.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeTest, NeighborCapAnswersTooLarge) {
  ServerOptions opts;
  opts.max_neighbors = 0;  // every non-isolated node trips the cap
  StartServer(opts);
  Client client = Connected();
  NodeId busiest = 0;
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    if (graph_.OutDegree(v) > graph_.OutDegree(busiest)) busiest = v;
  }
  ASSERT_GT(graph_.OutDegree(busiest), 0u);
  EXPECT_EQ(client.Neighbors(busiest).status, Status::kTooLarge);
  EXPECT_TRUE(client.Ping().ok());  // reply-side cap keeps the stream
}

TEST_F(ServeTest, SwapPackHotSwapsAtomically) {
  const std::string dir =
      (fs::temp_directory_path() / ("gorder_swap_" + std::to_string(::getpid())))
          .string();
  fs::create_directories(dir);
  Graph next = gen::MakeDataset("epinion", 0.05, 2);
  const std::string pack_b = dir + "/b.gpack";
  ASSERT_TRUE(store::WritePack(pack_b, next).ok);

  StartServer();
  Client client = Connected();
  InfoReply before = client.Info();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.epoch, 1u);
  EXPECT_EQ(before.num_edges, graph_.NumEdges());

  Reply swap = client.SwapPack(pack_b);
  ASSERT_TRUE(swap.ok()) << swap.error;
  EXPECT_EQ(swap.epoch, 2u);
  EXPECT_EQ(server_->Epoch(), 2u);

  // The same connection now serves the new snapshot, tagged epoch 2.
  InfoReply after = client.Info();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(after.num_nodes, next.NumNodes());
  EXPECT_EQ(after.num_edges, next.NumEdges());

  // A failed swap must not disturb the published snapshot.
  EXPECT_EQ(client.SwapPack(dir + "/missing.gpack").status, Status::kInternal);
  EXPECT_EQ(server_->Epoch(), 2u);
  EXPECT_EQ(client.Info().num_edges, next.NumEdges());

  fs::remove_all(dir);
}

TEST_F(ServeTest, AdminOpcodesCanBeDisabled) {
  ServerOptions opts;
  opts.allow_swap = false;
  opts.allow_shutdown = false;
  StartServer(opts);
  Client client = Connected();
  EXPECT_EQ(client.SwapPack("/tmp/x.gpack").status, Status::kBadRequest);
  EXPECT_EQ(client.Shutdown().status, Status::kBadRequest);
  EXPECT_FALSE(server_->WaitForShutdown(0.05));  // nothing was requested
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeTest, ShutdownOpcodeReleasesWaitForShutdown) {
  StartServer();
  Client client = Connected();
  EXPECT_FALSE(server_->WaitForShutdown(0.05));
  Reply reply = client.Shutdown();
  EXPECT_TRUE(reply.ok()) << reply.error;
  EXPECT_TRUE(server_->WaitForShutdown(30.0));
  server_->Stop();
  // After Stop the socket is gone; a new connect fails cleanly.
  Client late;
  EXPECT_FALSE(late.Connect(UnixAddr(sock_path_), 5.0).ok);
}

TEST_F(ServeTest, TcpEphemeralPortIsResolvable) {
  util::NetAddress addr;
  addr.host = "127.0.0.1";
  addr.port = 0;
  ServerOptions opts;
  opts.listen = addr;
  server_ = std::make_unique<Server>(graph_.Clone(), opts);
  ASSERT_TRUE(server_->Start().ok);
  const int port = server_->Port();
  ASSERT_GT(port, 0);
  addr.port = port;
  Client client;
  ASSERT_TRUE(client.Connect(addr, 30.0).ok);
  EXPECT_TRUE(client.Ping().ok());
  InfoReply info = client.Info();
  EXPECT_EQ(info.num_nodes, graph_.NumNodes());
}

TEST_F(ServeTest, ConnectionsOverTheCapAreRefusedCleanly) {
  ServerOptions opts;
  opts.max_connections = 1;
  StartServer(opts);
  Client first = Connected();
  ASSERT_TRUE(first.Ping().ok());
  // The second connect is accepted then dropped before the handshake
  // ack: Connect fails with a clean error, nothing hangs.
  Client second;
  IoResult r = second.Connect(UnixAddr(sock_path_), 5.0);
  EXPECT_FALSE(r.ok);
  // The admitted connection is unaffected.
  EXPECT_TRUE(first.Ping().ok());
}

TEST_F(ServeTest, QueueFullAnswersOverloadedDeterministically) {
  ServerOptions opts;
  opts.serve_threads = 1;
  opts.queue_capacity = 2;
  StartServer(opts);

  // Hold the single worker on a latch once it has dequeued the first
  // request; the queue then fills to exactly queue_capacity and every
  // further frame must be refused by the reader with kOverloaded.
  std::mutex mu;
  std::condition_variable cv;
  bool worker_entered = false;
  bool release = false;
  server_->SetExecuteHookForTest([&](const Request&) {
    std::unique_lock<std::mutex> lock(mu);
    worker_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });

  util::Socket s;
  ASSERT_TRUE(util::ConnectSocket(UnixAddr(sock_path_), &s, 30.0).ok);
  std::string hello;
  AppendHandshake(&hello);
  ASSERT_TRUE(util::WriteFull(s, hello.data(), hello.size()).ok);
  char ack[kHandshakeBytes];
  ASSERT_TRUE(util::ReadFull(s, ack, sizeof(ack)).ok);

  auto send_ping = [&](std::uint64_t id) {
    Request req;
    req.id = id;
    req.opcode = Opcode::kPing;
    std::string frame;
    AppendRequest(&frame, req);
    ASSERT_TRUE(util::WriteFull(s, frame.data(), frame.size()).ok);
  };
  auto read_response = [&](ResponseHeader* header) {
    std::uint32_t len = 0;
    ASSERT_TRUE(util::ReadFull(s, &len, 4).ok);
    std::string payload(len, '\0');
    ASSERT_TRUE(util::ReadFull(s, payload.data(), len).ok);
    std::string full;
    PutU32(&full, len);
    full += payload;
    const std::byte* body = nullptr;
    std::size_t body_len = 0;
    std::string error;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeResponse(reinterpret_cast<const std::byte*>(full.data()),
                             full.size(), &consumed, header, &body, &body_len,
                             &error),
              DecodeResult::kOk)
        << error;
  };

  // Request 1 occupies the worker (we wait until it provably has).
  send_ping(1);
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return worker_entered; }));
  }
  // Requests 2..3 fill the queue; 4..8 must bounce off admission
  // control. The reader answers those immediately, in frame order.
  for (std::uint64_t id = 2; id <= 8; ++id) send_ping(id);
  for (std::uint64_t id = 4; id <= 8; ++id) {
    ResponseHeader header;
    read_response(&header);
    EXPECT_EQ(header.status, Status::kOverloaded) << "id " << header.id;
    EXPECT_EQ(header.id, id);
  }
  // Release the worker: the occupied + queued requests complete OK.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ResponseHeader header;
    read_response(&header);
    EXPECT_EQ(header.status, Status::kOk) << "id " << header.id;
    EXPECT_EQ(header.id, id);
  }
}

// ---- Observability plane: kStats, admin HTTP, request tracing ----

/// One-shot HTTP/1.0 exchange against the admin listener: send `request`
/// verbatim, read until the server closes (Connection: close semantics).
std::string AdminHttp(int port, const std::string& request) {
  util::NetAddress addr;
  addr.host = "127.0.0.1";
  addr.port = port;
  util::Socket s;
  IoResult r = util::ConnectSocket(addr, &s, 30.0);
  EXPECT_TRUE(r.ok) << r.error;
  if (!r.ok) return "";
  EXPECT_TRUE(util::WriteFull(s, request.data(), request.size()).ok);
  std::string response;
  char buf[1024];
  for (;;) {
    std::size_t got = 0;
    if (!util::ReadSome(s, buf, sizeof buf, &got).ok || got == 0) break;
    response.append(buf, got);
  }
  return response;
}

TEST_F(ServeTest, StatsOpcodeReturnsParseableSnapshot) {
  StartServer();
  Client client = Connected();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Degree(0).ok());
  StatsReply stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.error;
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(stats.json, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->str, "gorder-stats");
  EXPECT_EQ(doc.U64("epoch"), 1u);
  EXPECT_EQ(doc.U64("connections"), 1u);
  const obs::JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  // The ping + degree (and this stats call) all counted as requests.
  EXPECT_GE(counters->U64("serve.requests"), 3u);
  ASSERT_NE(doc.Find("windows"), nullptr);
  if (obs::Enabled()) {
    EXPECT_NE(doc.Find("windows")->Find("serve.req_us.ping"), nullptr);
  }
}

TEST_F(ServeTest, AdminEndpointsServeMetricsHealthAndTraces) {
  ServerOptions opts;
  opts.admin_enabled = true;
  opts.admin_listen.host = "127.0.0.1";
  opts.admin_listen.port = 0;
  opts.trace_sample = 1;  // sample every request
  StartServer(opts);
  const int port = server_->AdminPort();
  ASSERT_GT(port, 0);

  Client client = Connected();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Bfs(0).ok());

  std::string health = AdminHttp(port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  std::string metrics = AdminHttp(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("gorder_serve_requests_total"), std::string::npos);
  if (obs::Enabled()) {
    EXPECT_NE(metrics.find("gorder_serve_req_us_ping"), std::string::npos);
  }

  std::string tracez = AdminHttp(port, "GET /tracez HTTP/1.0\r\n\r\n");
  EXPECT_NE(tracez.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(tracez.find("application/json"), std::string::npos);
  const std::size_t body_at = tracez.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(tracez.substr(body_at + 4), &doc, &error))
      << error;
  EXPECT_EQ(doc.Find("schema")->str, "gorder-tracez");
  if (obs::Enabled()) {
    // trace_sample=1: the ping and bfs above are both in the ring.
    EXPECT_GE(doc.U64("total_pushed"), 2u);
    ASSERT_FALSE(doc.Find("records")->array.empty());
  }

  // Unknown path and non-GET get clean errors, and the daemon survives.
  EXPECT_NE(AdminHttp(port, "GET /nope HTTP/1.0\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(AdminHttp(port, "POST /metrics HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(AdminHttp(port, "garbage\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeTest, AdminListenerStopsWithServer) {
  ServerOptions opts;
  opts.admin_enabled = true;
  opts.admin_listen.host = "127.0.0.1";
  opts.admin_listen.port = 0;
  StartServer(opts);
  const int port = server_->AdminPort();
  ASSERT_GT(port, 0);
  server_->Stop();
  util::NetAddress addr;
  addr.host = "127.0.0.1";
  addr.port = port;
  util::Socket s;
  EXPECT_FALSE(util::ConnectSocket(addr, &s, 2.0).ok);
}

}  // namespace
}  // namespace gorder::serve
