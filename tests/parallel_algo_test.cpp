// Differential suite for the parallel algorithm kernels: every
// parallelized workload (PageRank, BFS, WCC, triangle counting, SP) must
// produce *bit-identical* results at 1, 2 and 8 threads — the same
// contract tests/parallel_test.cpp enforces for the CSR pipeline — across
// random-model graphs and the usual degenerate shapes (empty, singleton,
// self-loops, duplicates, disconnected). The cache-traced variants run
// the original serial bodies unconditionally, so comparing the parallel
// output against them additionally pins the parallel kernels to the
// historical serial semantics, floating point included.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "algo/algorithms.h"
#include "algo/extra.h"
#include "algo/traced.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gorder {
namespace {

class ThreadGuard {
 public:
  ~ThreadGuard() { SetNumThreads(0); }
};

/// The graph cases every kernel is differenced on. Edge cases ride along
/// with the three random models the reordering benches use.
std::vector<std::pair<std::string, Graph>> MakeCases() {
  std::vector<std::pair<std::string, Graph>> cases;
  Rng rng(99);
  cases.emplace_back("er", gen::ErdosRenyi(600, 6000, rng));
  cases.emplace_back("rmat",
                     gen::Rmat({.scale = 10, .num_edges = 20000}, rng));
  cases.emplace_back("copying", gen::CopyingModel(800, 5, 0.5, rng));
  cases.emplace_back("empty", Graph::FromEdges(0, {}));
  cases.emplace_back("singleton", Graph::FromEdges(1, {}));
  cases.emplace_back("isolated", Graph::FromEdges(5, {}));
  cases.emplace_back(
      "selfloops",
      Graph::FromEdges(4, {{0, 0}, {0, 1}, {1, 1}, {2, 2}, {3, 0}},
                       /*keep_self_loops=*/true));
  cases.emplace_back(
      "dup_edges",
      Graph::FromEdges(4, {{0, 1}, {0, 1}, {1, 2}, {1, 2}, {2, 0}},
                       /*keep_self_loops=*/false, /*keep_duplicates=*/true));
  // Two components plus isolated tail nodes: exercises forest/WCC paths.
  cases.emplace_back("disconnected",
                     Graph::FromEdges(10, {{0, 1}, {1, 2}, {2, 0},
                                           {4, 5}, {5, 6}}));
  // Long path: worst case for pointer-jumping depth and BFS level count.
  {
    std::vector<Edge> path;
    for (NodeId v = 0; v + 1 < 300; ++v) path.push_back({v, v + 1});
    cases.emplace_back("path", Graph::FromEdges(300, std::move(path)));
  }
  return cases;
}

/// Doubles are compared through their bit patterns: the contract is
/// bit-identity, not approximate equality.
void ExpectBitEqual(const std::vector<double>& a,
                    const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " index " << i << " (" << a[i]
                      << " vs " << b[i] << ")";
  }
}

NodeId PickSource(const Graph& g) {
  NodeId best = 0;
  for (NodeId v = 1; v < g.NumNodes(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

TEST(ParallelAlgoDifferentialTest, PageRankBitIdentical) {
  ThreadGuard guard;
  for (auto& [name, g] : MakeCases()) {
    SetNumThreads(1);
    auto reference = algo::PageRank(g, 30, 0.85);
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      auto got = algo::PageRank(g, 30, 0.85);
      ExpectBitEqual(reference.rank, got.rank,
                     name + " rank t=" + std::to_string(threads));
      std::uint64_t mass_ref, mass_got;
      std::memcpy(&mass_ref, &reference.total_mass, sizeof(mass_ref));
      std::memcpy(&mass_got, &got.total_mass, sizeof(mass_got));
      EXPECT_EQ(mass_ref, mass_got) << name << " t=" << threads;
      EXPECT_EQ(reference.iterations, got.iterations);
    }
  }
}

TEST(ParallelAlgoDifferentialTest, BfsBitIdentical) {
  ThreadGuard guard;
  for (auto& [name, g] : MakeCases()) {
    if (g.NumNodes() == 0) continue;  // Bfs requires a valid source.
    const NodeId src = PickSource(g);
    SetNumThreads(1);
    auto ref_single = algo::Bfs(g, src);
    auto ref_forest = algo::BfsForest(g);
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      auto single = algo::Bfs(g, src);
      EXPECT_EQ(ref_single.level, single.level) << name << " t=" << threads;
      EXPECT_EQ(ref_single.num_reached, single.num_reached) << name;
      EXPECT_EQ(ref_single.sum_levels, single.sum_levels) << name;
      auto forest = algo::BfsForest(g);
      EXPECT_EQ(ref_forest.level, forest.level) << name << " t=" << threads;
      EXPECT_EQ(ref_forest.num_reached, forest.num_reached) << name;
      EXPECT_EQ(ref_forest.sum_levels, forest.sum_levels) << name;
    }
  }
}

TEST(ParallelAlgoDifferentialTest, SpBitIdentical) {
  ThreadGuard guard;
  for (auto& [name, g] : MakeCases()) {
    if (g.NumNodes() == 0) continue;
    const NodeId src = PickSource(g);
    SetNumThreads(1);
    auto reference = algo::Sp(g, src);
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      auto got = algo::Sp(g, src);
      EXPECT_EQ(reference.dist, got.dist) << name << " t=" << threads;
      EXPECT_EQ(reference.num_reached, got.num_reached) << name;
      EXPECT_EQ(reference.max_dist, got.max_dist) << name;
      EXPECT_EQ(reference.num_rounds, got.num_rounds) << name;
    }
  }
}

TEST(ParallelAlgoDifferentialTest, WccBitIdentical) {
  ThreadGuard guard;
  for (auto& [name, g] : MakeCases()) {
    SetNumThreads(1);
    auto reference = algo::Wcc(g);
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      auto got = algo::Wcc(g);
      EXPECT_EQ(reference.component, got.component)
          << name << " t=" << threads;
      EXPECT_EQ(reference.num_components, got.num_components) << name;
      EXPECT_EQ(reference.largest_component, got.largest_component) << name;
    }
  }
}

TEST(ParallelAlgoDifferentialTest, TriangleCountBitIdentical) {
  ThreadGuard guard;
  for (auto& [name, g] : MakeCases()) {
    SetNumThreads(1);
    std::uint64_t reference = algo::TriangleCount(g);
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      EXPECT_EQ(reference, algo::TriangleCount(g))
          << name << " t=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// The cache-traced variants always run the original serial bodies, so
// parallel-at-8-threads vs traced differencing locks the parallel kernels
// to the historical serial semantics (not merely to themselves).

TEST(ParallelVsTracedTest, ParallelMatchesSerialTracedSemantics) {
  ThreadGuard guard;
  Rng rng(5);
  Graph g = gen::Rmat({.scale = 9, .num_edges = 12000}, rng);
  const NodeId src = PickSource(g);
  SetNumThreads(8);

  cachesim::CacheHierarchy caches(cachesim::CacheHierarchyConfig::TestTiny());
  auto pr_traced = algo::PageRankTraced(g, 20, 0.85, caches);
  auto pr = algo::PageRank(g, 20, 0.85);
  ExpectBitEqual(pr_traced.rank, pr.rank, "pagerank vs traced");

  auto bfs_traced = algo::BfsForestTraced(g, caches);
  auto bfs = algo::BfsForest(g);
  EXPECT_EQ(bfs_traced.level, bfs.level);
  EXPECT_EQ(bfs_traced.num_reached, bfs.num_reached);
  EXPECT_EQ(bfs_traced.sum_levels, bfs.sum_levels);

  auto sp_traced = algo::SpTraced(g, src, caches);
  auto sp = algo::Sp(g, src);
  EXPECT_EQ(sp_traced.dist, sp.dist);
  EXPECT_EQ(sp_traced.num_reached, sp.num_reached);
  EXPECT_EQ(sp_traced.max_dist, sp.max_dist);
  EXPECT_EQ(sp_traced.num_rounds, sp.num_rounds);

  auto wcc_traced = algo::WccTraced(g, caches);
  auto wcc = algo::Wcc(g);
  EXPECT_EQ(wcc_traced.component, wcc.component);
  EXPECT_EQ(wcc_traced.num_components, wcc.num_components);
  EXPECT_EQ(wcc_traced.largest_component, wcc.largest_component);

  EXPECT_EQ(algo::TriangleCountTraced(g, caches), algo::TriangleCount(g));
}

// Known-answer sanity on a hand-checkable graph, at every thread count:
// a 4-clique (both edge directions) has 4 triangles, one component, and
// BFS/SP distances of 1 from any source.
TEST(ParallelAlgoDifferentialTest, KnownAnswersHoldAtAllThreadCounts) {
  ThreadGuard guard;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  Graph g = Graph::FromEdges(4, std::move(edges));
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    EXPECT_EQ(algo::TriangleCount(g), 4u) << threads;
    auto wcc = algo::Wcc(g);
    EXPECT_EQ(wcc.num_components, 1u) << threads;
    EXPECT_EQ(wcc.largest_component, 4u) << threads;
    auto bfs = algo::Bfs(g, 0);
    EXPECT_EQ(bfs.num_reached, 4u) << threads;
    EXPECT_EQ(bfs.sum_levels, 3u) << threads;
    auto sp = algo::Sp(g, 0);
    EXPECT_EQ(sp.num_reached, 4u) << threads;
    EXPECT_EQ(sp.max_dist, 1u) << threads;
    auto pr = algo::PageRank(g, 10);
    EXPECT_NEAR(pr.total_mass, 1.0, 1e-9) << threads;
    for (double r : pr.rank) EXPECT_NEAR(r, 0.25, 1e-12) << threads;
  }
}

}  // namespace
}  // namespace gorder
