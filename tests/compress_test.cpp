#include "compress/compressed_graph.h"

#include <gtest/gtest.h>

#include "algo/algorithms.h"
#include "compress/varint.h"
#include "gen/datasets.h"
#include "gen/generators.h"
#include "order/ordering.h"
#include "util/rng.h"

namespace gorder::compress {
namespace {

TEST(VarintTest, RoundTripsValues) {
  std::vector<std::uint8_t> buf;
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 300, 16383, 16384,
                                       (1ULL << 32) - 1, ~0ULL};
  for (auto v : values) AppendVarint(v, buf);
  std::size_t pos = 0;
  for (auto v : values) EXPECT_EQ(ReadVarint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, SizeMatchesEncoding) {
  for (std::uint64_t v : {0ULL, 127ULL, 128ULL, 99999ULL, ~0ULL}) {
    std::vector<std::uint8_t> buf;
    AppendVarint(v, buf);
    EXPECT_EQ(buf.size(), VarintSize(v)) << v;
  }
}

TEST(ZigZagTest, RoundTripsSigned) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 63LL, -64LL, 1LL << 40,
                         -(1LL << 40)}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes map to small codes.
  EXPECT_LE(ZigZagEncode(-3), 6u);
}

TEST(CompressedGraphTest, RoundTripsSmallGraph) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {0, 4}, {1, 2}, {3, 0}, {4, 3}});
  auto cg = CompressedGraph::FromGraph(g);
  EXPECT_EQ(cg.NumNodes(), g.NumNodes());
  EXPECT_EQ(cg.NumEdges(), g.NumEdges());
  Graph back = cg.Decompress();
  EXPECT_EQ(back.ToEdges(), g.ToEdges());
}

TEST(CompressedGraphTest, ForEachMatchesCsr) {
  Rng rng(1);
  Graph g = gen::Rmat({10, 8000, 0.57, 0.19, 0.19}, rng);
  auto cg = CompressedGraph::FromGraph(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    std::vector<NodeId> got;
    cg.ForEachOutNeighbor(v, [&](NodeId w) { got.push_back(w); });
    auto expect = g.OutNeighbors(v);
    ASSERT_EQ(got.size(), expect.size()) << v;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]);
    }
  }
}

TEST(CompressedGraphTest, EmptyAndIsolated) {
  Graph empty;
  auto cg = CompressedGraph::FromGraph(empty);
  EXPECT_EQ(cg.NumNodes(), 0u);
  EXPECT_EQ(cg.PayloadBytes(), 0u);

  Graph::Builder b;
  b.AddEdge(0, 1);
  b.ReserveNodes(10);
  Graph g = b.Build();
  auto cg2 = CompressedGraph::FromGraph(g);
  EXPECT_EQ(cg2.OutDegree(5), 0u);
  int count = 0;
  cg2.ForEachOutNeighbor(5, [&](NodeId) { ++count; });
  EXPECT_EQ(count, 0);
  EXPECT_EQ(cg2.Decompress().ToEdges(), g.ToEdges());
}

TEST(CompressedGraphTest, LocalOrderingCompressesBetter) {
  // The headline property: a locality-aware ordering shrinks the gap
  // encoding. Compare Gorder/RCM against Random on a web-like graph.
  Graph g = gen::MakeDataset("wiki", 0.2);
  auto bits = [&](order::Method m) {
    auto perm = order::ComputeOrdering(g, m, {});
    return CompressedGraph::FromGraph(g.Relabel(perm)).BitsPerEdge();
  };
  double random = bits(order::Method::kRandom);
  double gorder = bits(order::Method::kGorder);
  double rcm = bits(order::Method::kRcm);
  EXPECT_LT(gorder, random);
  EXPECT_LT(rcm, random);
}

TEST(CompressedGraphTest, DenseRunsApproachOneBytePerEdge) {
  // Consecutive neighbours encode as gap-1 = 0 -> one byte each.
  const NodeId n = 1000;
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 8 < n; ++v) {
    for (NodeId k = 1; k <= 8; ++k) edges.push_back({v, v + k});
  }
  Graph g = Graph::FromEdges(n, std::move(edges));
  auto cg = CompressedGraph::FromGraph(g);
  EXPECT_LT(cg.BitsPerEdge(), 9.0);  // ~8 bits/edge for unit gaps
}

TEST(CompressedGraphTest, PayloadSmallerThanCsrOnRealGraph) {
  Graph g = gen::MakeDataset("sdarc", 0.1);
  auto cg = CompressedGraph::FromGraph(g);
  // CSR out-neighbours alone cost 32 bits/edge.
  EXPECT_LT(cg.BitsPerEdge(), 32.0);
  EXPECT_EQ(cg.Decompress().NumEdges(), g.NumEdges());
}

TEST(PageRankOnCompressedTest, MatchesCsrPageRank) {
  Graph g = gen::MakeDataset("epinion", 0.08);
  auto cg = CompressedGraph::FromGraph(g);
  auto compressed = PageRankOnCompressed(cg, 25);
  auto reference = algo::PageRank(g, 25);
  ASSERT_EQ(compressed.size(), reference.rank.size());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(compressed[v], reference.rank[v], 1e-12) << v;
  }
}

TEST(PageRankOnCompressedTest, EmptyGraphSafe) {
  CompressedGraph cg;
  EXPECT_TRUE(PageRankOnCompressed(cg, 10).empty());
}

TEST(PageRankOnCompressedTest, MassConservedWithDanglingNodes) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}});  // 1,2,3 dangling
  auto cg = CompressedGraph::FromGraph(g);
  auto rank = PageRankOnCompressed(cg, 50);
  double mass = 0.0;
  for (double r : rank) mass += r;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

}  // namespace
}  // namespace gorder::compress
