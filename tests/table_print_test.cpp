// Output-format tests for TablePrinter: rendering goes to a temp FILE*
// and is read back, so alignment and CSV quoting stay locked down.

#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace gorder {
namespace {

std::string Render(const TablePrinter& table, bool csv) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  if (csv) {
    table.PrintCsv(f);
  } else {
    table.Print(f);
  }
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[256];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(TablePrintTest, AlignedColumnsAndSeparator) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string out = Render(t, /*csv=*/false);
  // Header, separator, two data rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "a" padded to the width of "longer".
  EXPECT_NE(out.find("a       1"), std::string::npos) << out;
  EXPECT_NE(out.find("longer  22"), std::string::npos) << out;
}

TEST(TablePrintTest, CsvHasNoPadding) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  std::string out = Render(t, /*csv=*/true);
  EXPECT_EQ(out, "name,value\na,1\n");
}

TEST(TablePrintTest, ShortRowsPadWithEmptyCells) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string out = Render(t, /*csv=*/true);
  EXPECT_EQ(out, "a,b,c\nonly,,\n");
}

TEST(TablePrintTest, EmptyTablePrintsHeaderOnly) {
  TablePrinter t({"x"});
  std::string out = Render(t, /*csv=*/false);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace gorder
