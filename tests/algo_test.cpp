#include "algo/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gen/generators.h"
#include "util/rng.h"

namespace gorder {
namespace {

using algo::Bfs;
using algo::BfsForest;
using algo::DfsForest;
using algo::Diameter;
using algo::DominatingSet;
using algo::IsDominatingSet;
using algo::KCore;
using algo::Nq;
using algo::PageRank;
using algo::Scc;
using algo::Sp;

// 0 -> 1 -> 2 -> 0 cycle, plus 2 -> 3 -> 4 tail, plus isolated 5.
Graph CycleWithTail() {
  return Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
}

TEST(NqTest, SumsNeighborDegrees) {
  Graph g = CycleWithTail();
  auto r = Nq(g);
  // q_0 = outdeg(1) = 1; q_1 = outdeg(2) = 2; q_2 = outdeg(0) + outdeg(3)
  // = 1 + 1; q_3 = outdeg(4) = 0; q_4 = q_5 = 0.
  EXPECT_EQ(r.q[0], 1u);
  EXPECT_EQ(r.q[1], 2u);
  EXPECT_EQ(r.q[2], 2u);
  EXPECT_EQ(r.q[3], 0u);
  EXPECT_EQ(r.checksum, 5u);
}

TEST(BfsTest, LevelsFromSource) {
  Graph g = CycleWithTail();
  auto r = Bfs(g, 0);
  EXPECT_EQ(r.level[0], 0u);
  EXPECT_EQ(r.level[1], 1u);
  EXPECT_EQ(r.level[2], 2u);
  EXPECT_EQ(r.level[3], 3u);
  EXPECT_EQ(r.level[4], 4u);
  EXPECT_EQ(r.level[5], kInfDistance);
  EXPECT_EQ(r.num_reached, 5u);
}

TEST(BfsTest, ForestCoversAllNodes) {
  Graph g = CycleWithTail();
  auto r = BfsForest(g);
  EXPECT_EQ(r.num_reached, g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NE(r.level[v], kInfDistance) << v;
  }
}

TEST(DfsTest, ForestCoversAllAndPreordersAreUnique) {
  Graph g = CycleWithTail();
  auto r = DfsForest(g);
  EXPECT_EQ(r.num_reached, g.NumNodes());
  std::vector<NodeId> d = r.discovery;
  std::sort(d.begin(), d.end());
  for (NodeId i = 0; i < g.NumNodes(); ++i) EXPECT_EQ(d[i], i);
}

TEST(DfsTest, LexicographicChildOrder) {
  // 0 -> {1, 2}, 1 -> {}, 2 -> {}: DFS must discover 1 before 2.
  Graph g = Graph::FromEdges(3, {{0, 1}, {0, 2}});
  auto r = DfsForest(g);
  EXPECT_EQ(r.discovery[0], 0u);
  EXPECT_EQ(r.discovery[1], 1u);
  EXPECT_EQ(r.discovery[2], 2u);
}

TEST(SccTest, CycleIsOneComponent) {
  Graph g = CycleWithTail();
  auto r = Scc(g);
  // {0,1,2} strongly connected; 3, 4, 5 singletons.
  EXPECT_EQ(r.num_components, 4u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_NE(r.component[3], r.component[0]);
  EXPECT_NE(r.component[3], r.component[4]);
  EXPECT_EQ(r.largest_component, 3u);
}

TEST(SccTest, DagIsAllSingletons) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto r = Scc(g);
  EXPECT_EQ(r.num_components, 4u);
  EXPECT_EQ(r.largest_component, 1u);
}

TEST(SccTest, TwoNodeCycle) {
  Graph g = Graph::FromEdges(2, {{0, 1}, {1, 0}});
  auto r = Scc(g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.largest_component, 2u);
}

TEST(SccTest, MatchesComponentCountOnRandomGraph) {
  // Cross-validate Tarjan with a brute-force reachability check on a
  // small random graph.
  Rng rng(11);
  Graph g = gen::ErdosRenyi(60, 150, rng);
  auto r = Scc(g);
  const NodeId n = g.NumNodes();
  // reach[u][v] via BFS from every node.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (NodeId s = 0; s < n; ++s) {
    auto bfs = Bfs(g, s);
    for (NodeId v = 0; v < n; ++v) {
      reach[s][v] = bfs.level[v] != kInfDistance;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      bool same = r.component[u] == r.component[v];
      bool mutual = reach[u][v] && reach[v][u];
      EXPECT_EQ(same, mutual) << u << " vs " << v;
    }
  }
}

TEST(SpTest, MatchesBfsLevelsOnUnitWeights) {
  Rng rng(12);
  Graph g = gen::BarabasiAlbert(300, 3, rng);
  auto sp = Sp(g, 5);
  auto bfs = Bfs(g, 5);
  EXPECT_EQ(sp.dist, bfs.level);
  EXPECT_EQ(sp.num_reached, bfs.num_reached);
}

TEST(SpTest, UnreachableStaysInfinite) {
  Graph g = CycleWithTail();
  auto r = Sp(g, 3);
  EXPECT_EQ(r.dist[3], 0u);
  EXPECT_EQ(r.dist[4], 1u);
  EXPECT_EQ(r.dist[0], kInfDistance);
  EXPECT_EQ(r.num_reached, 2u);
  EXPECT_EQ(r.max_dist, 1u);
}

TEST(PageRankTest, MassConserved) {
  Rng rng(13);
  Graph g = gen::ErdosRenyi(200, 800, rng);
  auto r = PageRank(g, 50);
  EXPECT_NEAR(r.total_mass, 1.0, 1e-9);
}

TEST(PageRankTest, DanglingNodesHandled) {
  // 0 -> 1, 1 has no out-edges (dangling).
  Graph g = Graph::FromEdges(2, {{0, 1}});
  auto r = PageRank(g, 100);
  EXPECT_NEAR(r.total_mass, 1.0, 1e-9);
  EXPECT_GT(r.rank[1], r.rank[0]);  // 1 receives, 0 only leaks
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto r = PageRank(g, 100);
  for (NodeId v = 0; v < 4; ++v) EXPECT_NEAR(r.rank[v], 0.25, 1e-9);
}

TEST(PageRankTest, HubRanksHigher) {
  // Star: everyone points to node 0.
  Graph g = Graph::FromEdges(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  auto r = PageRank(g, 100);
  for (NodeId v = 1; v < 5; ++v) EXPECT_GT(r.rank[0], r.rank[v]);
}

TEST(DominatingSetTest, CoversEveryNode) {
  Rng rng(14);
  Graph g = gen::BarabasiAlbert(400, 3, rng);
  auto r = DominatingSet(g);
  EXPECT_TRUE(IsDominatingSet(g, r.in_set));
  EXPECT_GT(r.set_size, 0u);
  EXPECT_LT(r.set_size, g.NumNodes());
}

TEST(DominatingSetTest, StarNeedsOneNode) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  auto r = DominatingSet(g);
  EXPECT_EQ(r.set_size, 1u);
  EXPECT_TRUE(r.in_set[0]);
}

TEST(DominatingSetTest, IsolatedNodesMustJoin) {
  Graph::Builder b;
  b.AddEdge(0, 1);
  b.ReserveNodes(4);  // nodes 2, 3 isolated
  Graph g = b.Build();
  auto r = DominatingSet(g);
  EXPECT_TRUE(r.in_set[2]);
  EXPECT_TRUE(r.in_set[3]);
  EXPECT_TRUE(IsDominatingSet(g, r.in_set));
}

TEST(KCoreTest, CliquePlusTail) {
  // Directed 4-clique (all pairs both ways) with a tail 3 -> 4.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  edges.push_back({3, 4});
  Graph g = Graph::FromEdges(5, edges);
  auto r = KCore(g);
  // Undirected multiset degree inside the clique is 6 (3 reciprocal
  // pairs); the tail node has degree 1 and peels first with core 1.
  EXPECT_EQ(r.core[4], 1u);
  EXPECT_EQ(r.core[0], 6u);
  EXPECT_EQ(r.core[3], 6u);
  EXPECT_EQ(r.max_core, 6u);
}

TEST(KCoreTest, CoreInvariantHolds) {
  // Every node's core number is at most its degree, and the max-core
  // subgraph has min degree >= max_core.
  Rng rng(15);
  Graph g = gen::PlantedPartition({800, 10, 8.0, 0.2}, rng);
  auto r = KCore(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LE(r.core[v], g.UndirectedDegree(v));
  }
  // Nodes in the max core: each must have >= max_core neighbours within
  // the max core (multiset count).
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (r.core[v] != r.max_core) continue;
    NodeId inside = 0;
    for (NodeId w : g.OutNeighbors(v)) inside += r.core[w] == r.max_core;
    for (NodeId w : g.InNeighbors(v)) inside += r.core[w] == r.max_core;
    EXPECT_GE(inside, r.max_core) << v;
  }
}

TEST(DiameterTest, PathGraph) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto r = Diameter(g, {0});
  EXPECT_EQ(r.diameter_estimate, 4u);
  auto r2 = Diameter(g, {2, 3});
  EXPECT_EQ(r2.diameter_estimate, 2u);  // best eccentricity seen from 2
  EXPECT_EQ(r2.sources_used, 2u);
}

TEST(DiameterTest, EmptySourcesGiveZero) {
  Graph g = CycleWithTail();
  auto r = Diameter(g, {});
  EXPECT_EQ(r.diameter_estimate, 0u);
  EXPECT_EQ(r.sources_used, 0u);
}

// ---- Permutation equivariance: relabelling must permute results ----

class EquivarianceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivarianceTest, ResultsPermuteUnderRelabel) {
  Rng rng(GetParam());
  Graph g = gen::Rmat({10, 6000, 0.57, 0.19, 0.19}, rng);
  std::vector<NodeId> perm = IdentityPermutation(g.NumNodes());
  rng.Shuffle(perm);
  Graph h = g.Relabel(perm);

  // NQ values permute.
  auto nq_g = Nq(g);
  auto nq_h = Nq(h);
  EXPECT_EQ(nq_g.checksum, nq_h.checksum);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(nq_g.q[v], nq_h.q[perm[v]]);
  }

  // SP distances from the corresponding source permute.
  NodeId src = 3;
  auto sp_g = Sp(g, src);
  auto sp_h = Sp(h, perm[src]);
  EXPECT_EQ(sp_g.num_reached, sp_h.num_reached);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(sp_g.dist[v], sp_h.dist[perm[v]]);
  }

  // SCC partition is identical up to renaming.
  auto scc_g = Scc(g);
  auto scc_h = Scc(h);
  EXPECT_EQ(scc_g.num_components, scc_h.num_components);
  EXPECT_EQ(scc_g.largest_component, scc_h.largest_component);

  // Core numbers permute.
  auto core_g = KCore(g);
  auto core_h = KCore(h);
  EXPECT_EQ(core_g.max_core, core_h.max_core);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(core_g.core[v], core_h.core[perm[v]]);
  }

  // PageRank scores permute (up to floating noise).
  auto pr_g = PageRank(g, 30);
  auto pr_h = PageRank(h, 30);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(pr_g.rank[v], pr_h.rank[perm[v]], 1e-12);
  }

  // Dominating sets may differ (greedy ties) but both must be valid.
  EXPECT_TRUE(IsDominatingSet(g, DominatingSet(g).in_set));
  EXPECT_TRUE(IsDominatingSet(h, DominatingSet(h).in_set));

  // Diameter from corresponding sources is identical.
  std::vector<NodeId> sources = {1, 7, 42};
  std::vector<NodeId> mapped;
  for (NodeId s : sources) mapped.push_back(perm[s]);
  EXPECT_EQ(Diameter(g, sources).diameter_estimate,
            Diameter(h, mapped).diameter_estimate);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivarianceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gorder
