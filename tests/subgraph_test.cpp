#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace gorder {
namespace {

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  // 0 -> 1 -> 2 -> 3, 1 -> 3; extract {1, 2}.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {1, 3}});
  auto sub = ExtractInducedSubgraph(g, {1, 2});
  EXPECT_EQ(sub.graph.NumNodes(), 2u);
  EXPECT_EQ(sub.graph.NumEdges(), 1u);  // only 1 -> 2 survives
  EXPECT_TRUE(sub.graph.HasEdge(0, 1));  // local ids follow input order
  EXPECT_EQ(sub.local_to_global[0], 1u);
  EXPECT_EQ(sub.local_to_global[1], 2u);
}

TEST(InducedSubgraphTest, FullSetIsIsomorphicCopy) {
  Rng rng(1);
  Graph g = gen::ErdosRenyi(100, 400, rng);
  std::vector<NodeId> all = IdentityPermutation(100);
  auto sub = ExtractInducedSubgraph(g, all);
  EXPECT_EQ(sub.graph.ToEdges(), g.ToEdges());
}

TEST(InducedSubgraphTest, EmptySelection) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  auto sub = ExtractInducedSubgraph(g, {});
  EXPECT_EQ(sub.graph.NumNodes(), 0u);
  EXPECT_EQ(sub.graph.NumEdges(), 0u);
}

TEST(ReverseGraphTest, TransposesEdges) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph r = ReverseGraph(g);
  EXPECT_EQ(r.NumEdges(), 3u);
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_TRUE(r.HasEdge(2, 0));
  EXPECT_FALSE(r.HasEdge(0, 1));
  // Double reversal is identity.
  EXPECT_EQ(ReverseGraph(r).ToEdges(), g.ToEdges());
}

TEST(ReverseGraphTest, InOutDegreesSwap) {
  Rng rng(2);
  Graph g = gen::BarabasiAlbert(300, 3, rng);
  Graph r = ReverseGraph(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g.OutDegree(v), r.InDegree(v));
    EXPECT_EQ(g.InDegree(v), r.OutDegree(v));
  }
}

TEST(UndirectedClosureTest, SymmetricAndDeduplicated) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {1, 2}});
  Graph u = UndirectedClosure(g);
  EXPECT_EQ(u.NumEdges(), 4u);  // (0,1),(1,0),(1,2),(2,1)
  for (NodeId v = 0; v < 3; ++v) {
    for (NodeId w : u.OutNeighbors(v)) {
      EXPECT_TRUE(u.HasEdge(w, v)) << v << "," << w;
    }
  }
}

TEST(LargestWccTest, PicksTheBigComponent) {
  Graph::Builder b;
  // Component A: a 3-cycle. Component B: a 10-node path (bigger).
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  for (NodeId v = 10; v < 19; ++v) b.AddEdge(v, v + 1);
  b.ReserveNodes(25);  // some isolated nodes too
  Graph g = b.Build();
  auto sub = LargestWccSubgraph(g);
  EXPECT_EQ(sub.graph.NumNodes(), 10u);
  EXPECT_EQ(sub.graph.NumEdges(), 9u);
  std::vector<NodeId> globals = sub.local_to_global;
  std::sort(globals.begin(), globals.end());
  EXPECT_EQ(globals.front(), 10u);
  EXPECT_EQ(globals.back(), 19u);
}

TEST(LargestWccTest, EmptyGraphSafe) {
  Graph g;
  auto sub = LargestWccSubgraph(g);
  EXPECT_EQ(sub.graph.NumNodes(), 0u);
}

TEST(ConfigurationModelTest, RealisesDegreesUpToErasure) {
  Rng rng(3);
  std::vector<NodeId> out = {3, 2, 1, 0, 2};
  std::vector<NodeId> in = {1, 1, 2, 3, 1};
  Graph g = gen::DirectedConfigurationModel(out, in, rng);
  EXPECT_EQ(g.NumNodes(), 5u);
  // Erased model: realised degrees never exceed requested.
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_LE(g.OutDegree(v), out[v]);
    EXPECT_LE(g.InDegree(v), in[v]);
  }
  EXPECT_LE(g.NumEdges(), 8u);
  EXPECT_GE(g.NumEdges(), 5u);  // most stubs survive at this density
}

TEST(PowerLawDegreesTest, BoundsAndSkew) {
  Rng rng(4);
  auto degrees = gen::SamplePowerLawDegrees(20000, 2.2, 2, 500, rng);
  NodeId lo = 500, hi = 0;
  double sum = 0;
  for (NodeId d : degrees) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    sum += d;
  }
  EXPECT_EQ(lo, 2u);
  EXPECT_GT(hi, 100u);                      // heavy tail reached
  EXPECT_LE(hi, 500u);
  EXPECT_LT(sum / degrees.size(), 12.0);    // mean stays small
}

TEST(PowerLawConfigurationGraphTest, BuildsSkewedGraph) {
  Rng rng(5);
  Graph g = gen::PowerLawConfigurationGraph(3000, 2.3, 2, 200, rng);
  EXPECT_EQ(g.NumNodes(), 3000u);
  EXPECT_GT(g.NumEdges(), 6000u);
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_in_degree, 50u);
}

}  // namespace
}  // namespace gorder
