#include "cachesim/cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace gorder::cachesim {
namespace {

TEST(CacheLevelTest, HitAfterMiss) {
  CacheLevel l1({"L1", 4 * 64, 1, 1.0}, 64);
  EXPECT_FALSE(l1.Access(100));
  EXPECT_TRUE(l1.Access(100));
}

TEST(CacheLevelTest, DirectMappedConflict) {
  // 4 sets, direct mapped: lines 0 and 4 map to set 0 and evict each other.
  CacheLevel l1({"L1", 4 * 64, 1, 1.0}, 64);
  EXPECT_FALSE(l1.Access(0));
  EXPECT_FALSE(l1.Access(4));
  EXPECT_FALSE(l1.Access(0));
  EXPECT_FALSE(l1.Access(4));
}

TEST(CacheLevelTest, TwoWayAvoidsPairConflict) {
  // 2 sets x 2 ways: lines 0 and 2 share set 0 but coexist.
  CacheLevel l({"L", 4 * 64, 2, 1.0}, 64);
  EXPECT_FALSE(l.Access(0));
  EXPECT_FALSE(l.Access(2));
  EXPECT_TRUE(l.Access(0));
  EXPECT_TRUE(l.Access(2));
}

TEST(CacheLevelTest, LruEvictsOldest) {
  // 1 set x 2 ways.
  CacheLevel l({"L", 2 * 64, 2, 1.0}, 64);
  l.Access(1);  // miss, install
  l.Access(2);  // miss, install
  l.Access(1);  // hit, refresh 1 -> LRU is 2
  l.Access(3);  // miss, evicts 2
  EXPECT_TRUE(l.Access(1));
  EXPECT_FALSE(l.Access(2));
}

TEST(CacheLevelTest, FlushEmptiesCache) {
  CacheLevel l({"L", 4 * 64, 1, 1.0}, 64);
  l.Access(7);
  EXPECT_TRUE(l.Access(7));
  l.Flush();
  EXPECT_FALSE(l.Access(7));
}

TEST(CacheHierarchyTest, CountsRefsAndMisses) {
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  int x = 0;
  h.Access(&x, sizeof x);  // cold miss everywhere
  EXPECT_EQ(h.stats().l1_refs, 1u);
  EXPECT_EQ(h.stats().l1_misses, 1u);
  EXPECT_EQ(h.stats().l3_refs, 1u);   // last level (L2 in TestTiny)
  EXPECT_EQ(h.stats().l3_misses, 1u);
  h.Access(&x, sizeof x);  // L1 hit
  EXPECT_EQ(h.stats().l1_refs, 2u);
  EXPECT_EQ(h.stats().l1_misses, 1u);
}

TEST(CacheHierarchyTest, L2CatchesL1Evictions) {
  // TestTiny: L1 is 4 lines direct-mapped, L2 is 8 sets x 2 ways.
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  // Lines 0 and 4 conflict in L1 (4 sets) but fit in L2 (8 sets).
  h.AccessLine(0);
  h.AccessLine(4);
  h.AccessLine(0);  // L1 miss (evicted), L2 hit
  EXPECT_EQ(h.stats().l1_misses, 3u);
  EXPECT_EQ(h.stats().l3_misses, 2u);  // only the two cold misses
}

TEST(CacheHierarchyTest, AccessSpanningLinesTouchesEachLine) {
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  alignas(64) char buf[256];
  h.Access(buf, 256);
  EXPECT_EQ(h.stats().l1_refs, 4u);  // 256 / 64
}

TEST(CacheHierarchyTest, UnalignedAccessCrossingOneLine) {
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  alignas(64) char buf[128];
  h.Access(buf + 60, 8);  // crosses the 64-byte boundary
  EXPECT_EQ(h.stats().l1_refs, 2u);
}

TEST(CacheHierarchyTest, StallCyclesModel) {
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  int x = 0;
  h.Access(&x, sizeof x);  // memory: stall 20
  h.Access(&x, sizeof x);  // L1 hit: no stall
  EXPECT_DOUBLE_EQ(h.stats().stall_cycles, 20.0);
  EXPECT_DOUBLE_EQ(h.stats().compute_cycles, 2.0);
  EXPECT_NEAR(h.stats().StallFraction(), 20.0 / 22.0, 1e-12);
}

TEST(CacheHierarchyTest, SequentialScanMissesOncePerLine) {
  CacheHierarchy h;  // full replication geometry
  std::vector<std::uint32_t> data(16 * 1024 / 4);  // 16 KiB, fits in L1
  for (auto& v : data) h.Access(&v, sizeof v);
  // 4096 refs over 256 lines (257 if the allocation is unaligned):
  // exactly one miss per line.
  EXPECT_EQ(h.stats().l1_refs, 4096u);
  EXPECT_GE(h.stats().l1_misses, 256u);
  EXPECT_LE(h.stats().l1_misses, 257u);
  // Second pass: everything hits L1.
  h.ResetStats();
  for (auto& v : data) h.Access(&v, sizeof v);
  EXPECT_EQ(h.stats().l1_misses, 0u);
}

TEST(CacheHierarchyTest, WorkingSetLargerThanL1HitsL2) {
  CacheHierarchy h;  // L1 32K, L2 256K
  std::vector<char> data(128 * 1024);  // 128 KiB
  // Two full passes: first is cold, second should hit L2 (not memory).
  h.Access(data.data(), data.size());
  auto cold = h.stats();
  const std::uint64_t lines = cold.l1_refs;  // one ref per touched line
  EXPECT_EQ(cold.l3_misses, lines);
  h.ResetStats();
  h.Access(data.data(), data.size());
  auto warm = h.stats();
  EXPECT_EQ(warm.l1_misses, lines);  // too big for L1: LRU thrash
  EXPECT_EQ(warm.l3_misses, 0u);     // but L2 holds it
}

TEST(CacheHierarchyTest, FlushResetsEverything) {
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  int x = 0;
  h.Access(&x, sizeof x);
  h.Flush();
  EXPECT_EQ(h.stats().l1_refs, 0u);
  h.Access(&x, sizeof x);
  EXPECT_EQ(h.stats().l1_misses, 1u);  // cold again after flush
}

TEST(CacheStatsTest, DerivedRatios) {
  CacheStats s;
  s.l1_refs = 1000;
  s.l1_misses = 159;
  s.l3_refs = 98;
  s.l3_misses = 25;
  EXPECT_NEAR(s.L1MissRate(), 0.159, 1e-12);
  EXPECT_NEAR(s.L3Ratio(), 0.098, 1e-12);
  EXPECT_NEAR(s.OverallMissRate(), 0.025, 1e-12);
}

TEST(CacheStatsTest, ZeroRefsSafe) {
  CacheStats s;
  EXPECT_EQ(s.L1MissRate(), 0.0);
  EXPECT_EQ(s.L3Ratio(), 0.0);
  EXPECT_EQ(s.OverallMissRate(), 0.0);
  EXPECT_EQ(s.StallFraction(), 0.0);
}

TEST(ConfigTest, ReplicationGeometry) {
  auto c = CacheHierarchyConfig::ReplicationXeon();
  ASSERT_EQ(c.levels.size(), 3u);
  EXPECT_EQ(c.levels[0].size_bytes, 32u * 1024);
  EXPECT_EQ(c.levels[2].size_bytes, 20u * 1024 * 1024);
  EXPECT_EQ(c.line_bytes, 64u);
}

TEST(TracerTest, NullTracerIsNoop) {
  NullTracer t;
  int x = 0;
  t.Touch(&x);  // must compile and do nothing
  EXPECT_FALSE(NullTracer::kEnabled);
}

TEST(TracerTest, CacheTracerForwards) {
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  CacheTracer t(&h);
  std::uint64_t x = 0;
  t.Touch(&x);
  EXPECT_EQ(h.stats().l1_refs, 1u);
  std::uint32_t arr[64] = {};
  t.Touch(arr, 64);  // 256 bytes -> 4-5 lines depending on alignment
  EXPECT_GE(h.stats().l1_refs, 5u);
}

}  // namespace
}  // namespace gorder::cachesim
