#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "harness/ranking.h"
#include "order/ordering.h"

namespace gorder::harness {
namespace {

TEST(WorkloadRegistryTest, NineWorkloadsInPaperOrder) {
  const auto& all = AllWorkloads();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(WorkloadName(all.front()), "NQ");
  EXPECT_EQ(WorkloadName(all.back()), "Diam");
  EXPECT_EQ(WorkloadName(Workload::kPr), "PR");
}

TEST(ConfigTest, SpSourceIsMaxOutDegree) {
  Graph g = Graph::FromEdges(4, {{2, 0}, {2, 1}, {2, 3}, {0, 1}});
  auto config = MakeDefaultConfig(g, 3);
  EXPECT_EQ(config.sp_source_logical, 2u);
  EXPECT_EQ(config.diam_sources_logical.size(), 3u);
  for (NodeId s : config.diam_sources_logical) EXPECT_LT(s, 4u);
}

class ChecksumInvarianceTest
    : public ::testing::TestWithParam<order::Method> {};

TEST_P(ChecksumInvarianceTest, OrderInvariantWorkloadsAgreeWithOriginal) {
  Graph g = gen::MakeDataset("epinion", 0.05);
  auto config = MakeDefaultConfig(g);
  config.pagerank_iterations = 5;
  auto identity = IdentityPermutation(g.NumNodes());

  order::OrderingParams params;
  params.sa_steps = 1000;
  auto perm = order::ComputeOrdering(g, GetParam(), params);
  Graph h = g.Relabel(perm);

  // These workloads produce numbering-independent checksums when sources
  // are mapped through the permutation.
  for (Workload w : {Workload::kNq, Workload::kScc, Workload::kSp,
                     Workload::kKcore, Workload::kDiam}) {
    EXPECT_EQ(RunWorkload(g, w, config, identity),
              RunWorkload(h, w, config, perm))
        << WorkloadName(w) << " under " << order::MethodName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ChecksumInvarianceTest,
    ::testing::Values(order::Method::kRandom, order::Method::kRcm,
                      order::Method::kGorder, order::Method::kSlashBurn),
    [](const auto& info) { return order::MethodName(info.param); });

TEST(TracedConsistencyTest, TracedMatchesUntracedChecksums) {
  Graph g = gen::MakeDataset("epinion", 0.03);
  auto config = MakeDefaultConfig(g);
  config.pagerank_iterations = 3;
  auto identity = IdentityPermutation(g.NumNodes());
  cachesim::CacheHierarchy caches(cachesim::CacheHierarchyConfig::TestTiny());
  for (Workload w : AllWorkloads()) {
    caches.Flush();
    EXPECT_EQ(RunWorkload(g, w, config, identity),
              RunWorkloadTraced(g, w, config, identity, caches))
        << WorkloadName(w);
    EXPECT_GT(caches.stats().l1_refs, 0u) << WorkloadName(w);
  }
}

TEST(TimeWorkloadTest, ReturnsPositiveMedian) {
  Graph g = gen::MakeDataset("epinion", 0.02);
  auto config = MakeDefaultConfig(g);
  config.pagerank_iterations = 2;
  double t = TimeWorkload(g, Workload::kNq, config,
                          IdentityPermutation(g.NumNodes()), 3);
  EXPECT_GE(t, 0.0);
}

// ---- Ranking ----

TEST(RankingTest, ExactRanksSimple) {
  //              method:  0     1     2
  std::vector<std::vector<double>> times = {
      {1.0, 2.0, 3.0},
      {2.0, 1.0, 3.0},
      {1.0, 2.0, 3.0},
  };
  auto table = RankSeries(times);
  EXPECT_EQ(table.num_series, 3);
  EXPECT_EQ(table.counts[0][0], 2);  // method 0 best twice
  EXPECT_EQ(table.counts[1][0], 1);
  EXPECT_EQ(table.counts[2][2], 3);  // method 2 always last
  EXPECT_DOUBLE_EQ(table.MeanRank(2), 2.0);
}

TEST(RankingTest, EqualTimesShareBetterRank) {
  std::vector<std::vector<double>> times = {{1.0, 1.0, 2.0}};
  auto table = RankSeries(times);
  EXPECT_EQ(table.counts[0][0], 1);
  EXPECT_EQ(table.counts[1][0], 1);
  EXPECT_EQ(table.counts[2][2], 1);  // rank skips to 2 after a tie
}

TEST(RankingTest, TieRatioBucketsSlowMethods) {
  // With the paper's 1.5x cap, 1.6 and 5.0 are both "beyond the limit"
  // and tie; without it they rank apart.
  std::vector<std::vector<double>> times = {{1.0, 1.6, 5.0}};
  auto exact = RankSeries(times, 0.0);
  EXPECT_EQ(exact.counts[1][1], 1);
  EXPECT_EQ(exact.counts[2][2], 1);
  auto capped = RankSeries(times, 1.5);
  EXPECT_EQ(capped.counts[1][1], 1);
  EXPECT_EQ(capped.counts[2][1], 1);  // shares the bucket
}

TEST(RankingTest, EmptyInputSafe) {
  auto table = RankSeries({});
  EXPECT_EQ(table.num_series, 0);
  EXPECT_TRUE(table.counts.empty());
}

}  // namespace
}  // namespace gorder::harness
