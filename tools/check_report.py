#!/usr/bin/env python3
"""Validates a gorder run report (--json-out) against schema v1.

Stdlib-only so it runs anywhere python3 exists (CI bench-smoke job).

Usage:
  tools/check_report.py REPORT.json [--require-depth=N]
                        [--require-metric=NAME ...]
                        [--require-span=NAME ...] [--trace=TRACE.json]

Exit status: 0 if the report (and optional trace) is valid, 1 otherwise,
with one diagnostic per violation on stderr.

Versioning: `schema_version` bumps on incompatible changes and must
match exactly; `schema_minor` (absent = 0) bumps on backward-compatible
additions and any value this validator does not know yet is accepted.
Minor 1 added the store.* family — pack/ordering-cache counters
(store.pack_hit, store.pack_miss, store.ordering_hit, store.ordering_miss,
store.ordering_write, store.pack_write_bytes, store.mmap_load_bytes, ...)
and spans (store.pack_write, store.mmap_load, store.ordering_lookup) —
emitted by runs with an active --store-dir.
Minor 2 added the serve.*/loadgen.*/net.* families (gorderd daemon and
its load generator).
Minor 3 added the top-level "windows" section: per-WindowedHistogram
{"10s": {...}, "60s": {...}} latency snapshots, each window carrying
count/sum/p50/p99/p999 as non-negative integers. Absent in pre-minor-3
reports; empty for runs that never record into a windowed histogram.
"""

import argparse
import json
import math
import sys

SCHEMA_NAME = "gorder-run-report"
SCHEMA_VERSION = 1

_errors = []


def err(msg):
    _errors.append(msg)
    print(f"check_report: {msg}", file=sys.stderr)


def expect(cond, msg):
    if not cond:
        err(msg)
    return cond


def check_env(env):
    if not expect(isinstance(env, dict), "env must be an object"):
        return
    for key, kind in [
        ("cpu_model", str),
        ("compiler", str),
        ("git_sha", str),
        ("os", str),
        ("threads", int),
        ("hardware_concurrency", int),
        ("obs_enabled", bool),
        ("hw_counters_available", bool),
        ("cache", dict),
    ]:
        expect(isinstance(env.get(key), kind),
               f"env.{key} must be {kind.__name__}")
    cache = env.get("cache", {})
    if isinstance(cache, dict):
        for key in ["l1d_bytes", "l2_bytes", "l3_bytes", "line_bytes"]:
            expect(isinstance(cache.get(key), int),
                   f"env.cache.{key} must be int")


def check_metrics(metrics):
    if not expect(isinstance(metrics, dict), "metrics must be an object"):
        return
    for name, value in metrics.items():
        expect(isinstance(name, str) and name,
               f"metric name {name!r} must be a non-empty string")
        expect(isinstance(value, int) and value >= 0,
               f"metric {name}: value must be a non-negative integer")


def check_histograms(hists):
    if not expect(isinstance(hists, dict), "histograms must be an object"):
        return
    for name, h in hists.items():
        if not expect(isinstance(h, dict), f"histogram {name} must be object"):
            continue
        expect(isinstance(h.get("count"), int),
               f"histogram {name}.count must be int")
        expect(isinstance(h.get("sum"), int),
               f"histogram {name}.sum must be int")
        buckets = h.get("buckets")
        if expect(isinstance(buckets, list),
                  f"histogram {name}.buckets must be a list"):
            expect(all(isinstance(b, int) and b >= 0 for b in buckets),
                   f"histogram {name}.buckets must be non-negative ints")
            expect(sum(buckets) == h.get("count"),
                   f"histogram {name}: bucket sum != count")


def check_windows(windows):
    if windows is None:
        return  # pre-minor-3 report
    if not expect(isinstance(windows, dict), "windows must be an object"):
        return
    for name, spec in windows.items():
        expect(isinstance(name, str) and name,
               f"window name {name!r} must be a non-empty string")
        if not expect(isinstance(spec, dict) and set(spec) == {"10s", "60s"},
                      f"windows[{name}] must hold exactly '10s' and '60s'"):
            continue
        for label, w in spec.items():
            path = f"windows[{name}].{label}"
            if not expect(isinstance(w, dict), f"{path} must be an object"):
                continue
            for key in ["count", "sum", "p50", "p99", "p999"]:
                v = w.get(key)
                expect(isinstance(v, int) and not isinstance(v, bool)
                       and v >= 0,
                       f"{path}.{key} must be a non-negative integer")
            if all(isinstance(w.get(k), int) for k in ["p50", "p99", "p999"]):
                expect(w["p50"] <= w["p99"] <= w["p999"],
                       f"{path}: quantiles must be non-decreasing "
                       f"(p50 <= p99 <= p999)")


def check_span(span, path, depth):
    if not expect(isinstance(span, dict), f"{path}: span must be an object"):
        return 0
    name = span.get("name")
    expect(isinstance(name, str) and name,
           f"{path}: span name must be a non-empty string")
    expect(isinstance(span.get("tid"), int), f"{path}: tid must be int")
    for key in ["start_s", "dur_s"]:
        v = span.get(key)
        ok = isinstance(v, (int, float)) and not isinstance(v, bool)
        expect(ok, f"{path}: {key} must be a number")
        if ok:
            expect(math.isfinite(v), f"{path}: {key} must be finite")
    dur = span.get("dur_s")
    if isinstance(dur, (int, float)):
        expect(dur >= 0, f"{path}: dur_s must be >= 0 (span left open?)")
    if "metrics" in span:
        check_metrics(span["metrics"])
    max_depth = depth
    for i, child in enumerate(span.get("children", [])):
        child_path = f"{path}.children[{i}]"
        max_depth = max(max_depth, check_span(child, child_path, depth + 1))
        if isinstance(child, dict):
            cs, ps = child.get("start_s"), span.get("start_s")
            if isinstance(cs, (int, float)) and isinstance(ps, (int, float)):
                expect(cs >= ps,
                       f"{child_path}: child starts before its parent")
    return max_depth


def span_names(span, out):
    if isinstance(span, dict):
        if isinstance(span.get("name"), str):
            out.add(span["name"])
        for child in span.get("children", []):
            span_names(child, out)


def check_report(doc, require_depth, require_metrics, require_spans):
    expect(doc.get("schema") == SCHEMA_NAME,
           f"schema must be {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
    expect(doc.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    # Backward/forward-compatible minor: absent (pre-minor reports) = 0,
    # unknown larger values are fine by definition.
    minor = doc.get("schema_minor", 0)
    expect(isinstance(minor, int) and minor >= 0,
           f"schema_minor must be a non-negative int (got {minor!r})")
    expect(isinstance(doc.get("bench"), str) and doc.get("bench"),
           "bench must be a non-empty string")
    expect(isinstance(doc.get("timestamp_unix"), int),
           "timestamp_unix must be int")
    expect(isinstance(doc.get("flags"), dict), "flags must be an object")
    check_env(doc.get("env"))
    check_metrics(doc.get("metrics", {}))
    check_histograms(doc.get("histograms", {}))
    check_windows(doc.get("windows"))
    if isinstance(minor, int) and minor >= 3:
        expect("windows" in doc,
               "schema_minor >= 3 requires a windows section")
    spans = doc.get("spans")
    if expect(isinstance(spans, list), "spans must be a list"):
        max_depth = max((check_span(s, f"spans[{i}]", 1)
                         for i, s in enumerate(spans)), default=0)
        if require_depth:
            expect(max_depth >= require_depth,
                   f"span tree depth {max_depth} < required {require_depth}")
    for name in require_metrics:
        value = doc.get("metrics", {}).get(name)
        expect(isinstance(value, int) and value > 0,
               f"required metric {name} missing or zero (got {value!r})")
    if require_spans:
        seen = set()
        for s in spans if isinstance(spans, list) else []:
            span_names(s, seen)
        for name in require_spans:
            expect(name in seen,
                   f"required span {name!r} not found in the span tree")


def check_trace(doc):
    events = doc.get("traceEvents")
    if not expect(isinstance(events, list) and events,
                  "trace: traceEvents must be a non-empty list"):
        return
    for i, ev in enumerate(events):
        if not expect(isinstance(ev, dict), f"trace[{i}]: must be object"):
            continue
        expect(ev.get("ph") == "X", f"trace[{i}]: ph must be 'X'")
        for key in ["name", "cat"]:
            expect(isinstance(ev.get(key), str), f"trace[{i}]: bad {key}")
        for key in ["ts", "dur"]:
            v = ev.get(key)
            expect(isinstance(v, (int, float)) and math.isfinite(v),
                   f"trace[{i}]: bad {key}")
        for key in ["pid", "tid"]:
            expect(isinstance(ev.get(key), int), f"trace[{i}]: bad {key}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--require-depth", type=int, default=0,
                        help="minimum span-tree nesting depth")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="metric that must exist with a nonzero value")
    parser.add_argument("--require-span", action="append", default=[],
                        help="span name that must appear in the span tree")
    parser.add_argument("--trace", default=None,
                        help="also validate a --trace-out file")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(f"{args.report}: {e}")
        return 1
    check_report(doc, args.require_depth, args.require_metric,
                 args.require_span)

    if args.trace is not None:
        try:
            with open(args.trace) as f:
                check_trace(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            err(f"{args.trace}: {e}")

    if _errors:
        print(f"check_report: {len(_errors)} violation(s) in {args.report}",
              file=sys.stderr)
        return 1
    print(f"check_report: {args.report} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
