// gordertop — live terminal watcher for a running gorderd
// (DESIGN.md §17).
//
// Polls the daemon's kStats opcode once per interval and renders the
// delta since the previous poll: qps, error/overload rates, queue
// depth, serving epoch, per-opcode windowed latencies (p50/p99 over the
// last 10s) and the store hit rate. Counters are monotonic, so every
// rate is (now - prev) / dt — restart-proof and cheap.
//
// Usage:
//   gordertop --connect=unix:/tmp/gorderd.sock [--interval=1]
//             [--count=N] [--once]
//
// `--once` (or --count=1) prints a single snapshot and exits — that is
// what the CI smoke job and the tests drive. Exit codes: 0 ok, 1 lost
// connection, 2 usage error.

#include <cstdio>
#include <cstdlib>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/client.h"
#include "util/flags.h"
#include "util/net.h"

namespace gorder {
namespace {

struct OpcodeRow {
  std::string name;   // "neighbors"
  std::uint64_t count_10s = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

struct Sample {
  bool valid = false;
  double taken_s = 0;  // steady-clock seconds, for rate denominators
  std::uint64_t epoch = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t connections = 0;
  std::uint64_t traces_sampled = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::vector<OpcodeRow> opcodes;
};

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Extracts the watcher's view from one gorder-stats document. Returns
/// false when the document is not parseable as gorder-stats.
bool ParseSample(const std::string& json, Sample* out, std::string* error) {
  obs::JsonValue doc;
  if (!obs::ParseJson(json, &doc, error)) return false;
  const obs::JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->str != "gorder-stats") {
    *error = "not a gorder-stats document";
    return false;
  }
  out->epoch = doc.U64("epoch");
  out->queue_depth = doc.U64("queue_depth");
  out->in_flight = doc.U64("in_flight");
  out->connections = doc.U64("connections");
  out->traces_sampled = doc.U64("traces_sampled");
  if (const obs::JsonValue* counters = doc.Find("counters")) {
    out->requests = counters->U64("serve.requests");
    out->responses = counters->U64("serve.responses");
    out->overloaded = counters->U64("serve.overloaded");
    out->errors = counters->U64("serve.error_responses");
    out->store_hits = counters->U64("store.pack_hit") +
                      counters->U64("store.ordering_hit");
    out->store_misses = counters->U64("store.pack_miss") +
                        counters->U64("store.ordering_miss");
  }
  if (const obs::JsonValue* windows = doc.Find("windows")) {
    const std::string prefix = "serve.req_us.";
    for (const auto& [name, value] : windows->object) {
      if (name.rfind(prefix, 0) != 0) continue;
      const obs::JsonValue* short_win = value.Find("10s");
      if (short_win == nullptr) continue;
      OpcodeRow row;
      row.name = name.substr(prefix.size());
      row.count_10s = short_win->U64("count");
      row.p50 = short_win->U64("p50");
      row.p99 = short_win->U64("p99");
      out->opcodes.push_back(std::move(row));
    }
  }
  out->valid = true;
  return true;
}

void Render(const Sample& now, const Sample& prev) {
  const double dt =
      prev.valid && now.taken_s > prev.taken_s ? now.taken_s - prev.taken_s
                                               : 0;
  auto rate = [dt](std::uint64_t cur, std::uint64_t old) {
    if (dt <= 0 || cur < old) return 0.0;
    return static_cast<double>(cur - old) / dt;
  };
  std::printf("epoch %llu | conns %llu | queue %llu (+%llu in flight)\n",
              static_cast<unsigned long long>(now.epoch),
              static_cast<unsigned long long>(now.connections),
              static_cast<unsigned long long>(now.queue_depth),
              static_cast<unsigned long long>(now.in_flight));
  std::printf(
      "qps %.1f | resp/s %.1f | overload/s %.1f | err/s %.1f | "
      "traces %llu\n",
      rate(now.requests, prev.requests),
      rate(now.responses, prev.responses),
      rate(now.overloaded, prev.overloaded), rate(now.errors, prev.errors),
      static_cast<unsigned long long>(now.traces_sampled));
  const std::uint64_t lookups = now.store_hits + now.store_misses;
  if (lookups > 0) {
    std::printf("store hit rate %.1f%% (%llu lookups)\n",
                100.0 * static_cast<double>(now.store_hits) /
                    static_cast<double>(lookups),
                static_cast<unsigned long long>(lookups));
  }
  std::printf("%-14s %10s %10s %10s\n", "opcode", "req(10s)", "p50us",
              "p99us");
  for (const OpcodeRow& row : now.opcodes) {
    if (row.count_10s == 0) continue;  // only active opcodes
    std::printf("%-14s %10llu %10llu %10llu\n", row.name.c_str(),
                static_cast<unsigned long long>(row.count_10s),
                static_cast<unsigned long long>(row.p50),
                static_cast<unsigned long long>(row.p99));
  }
  std::fflush(stdout);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string connect = flags.GetString("connect", "");
  util::NetAddress addr;
  std::string parse_error;
  if (connect.empty() ||
      !util::ParseNetAddress(connect, &addr, &parse_error)) {
    std::fprintf(stderr,
                 "usage: gordertop --connect=unix:/path|tcp:HOST:PORT "
                 "[--interval=1] [--count=N] [--once]\n%s\n",
                 parse_error.c_str());
    return 2;
  }
  const double interval_s = flags.GetDouble("interval", 1.0);
  std::int64_t count = flags.GetInt("count", 0);  // 0 = forever
  if (flags.GetBool("once", false)) count = 1;
  if (interval_s <= 0 || count < 0) {
    std::fprintf(stderr,
                 "error: --interval must be positive, --count "
                 "non-negative\n");
    return 2;
  }

  serve::Client client;
  IoResult r = client.Connect(addr);
  if (!r.ok) {
    std::fprintf(stderr, "gordertop: %s\n", r.error.c_str());
    return 1;
  }
  Sample prev;
  for (std::int64_t i = 0; count == 0 || i < count; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
      std::printf("\n");
    }
    serve::StatsReply reply = client.Stats();
    if (!reply.ok()) {
      std::fprintf(stderr, "gordertop: stats failed: %s\n",
                   reply.error.c_str());
      return 1;
    }
    Sample now;
    now.taken_s = SteadySeconds();
    std::string error;
    if (!ParseSample(reply.json, &now, &error)) {
      std::fprintf(stderr, "gordertop: bad stats json: %s\n", error.c_str());
      return 1;
    }
    Render(now, prev);
    prev = now;
  }
  return 0;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) { return gorder::Run(argc, argv); }
