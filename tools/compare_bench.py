#!/usr/bin/env python3
"""Compares or merges gorder perf snapshots.

Stdlib-only so it runs anywhere python3 exists (CI perf-smoke job).

Two trajectory families share one document structure and this one tool:
the ordering trajectory (repo-root BENCH_ordering.json, schema
"gorder-bench-ordering", written by bench/perf_ordering.cpp) and the
generation trajectory (repo-root BENCH_gen.json, schema
"gorder-bench-gen", written by bench/perf_gen.cpp). A document is
{"schema": <name>, "schema_version": 1, "entries": [...]}; snapshot and
baseline must carry the *same* schema — the tool never compares
generation times against ordering times. Every entry carries the wall
time of a fixed pointer-chase calibration kernel; comparisons are made
on calibration-normalised seconds (median / calibration), so a slower
CI host does not read as a regression and a faster one does not mask
one.

Compare mode (default):
  tools/compare_bench.py SNAPSHOT.json --baseline=BENCH_ordering.json \
      [--tolerance=0.25] [--score-tolerance=0.001]

  Runs are matched on (dataset, method, scale, seed, window, lazy,
  threads); ordering runs carry no "threads" field, which matches on
  both sides as absent. The
  latest baseline entry containing a matching run wins. Exit 1 if any
  matched run's normalised time regresses by more than --tolerance
  (fraction, default 25%) or its locality score drifts by more than
  --score-tolerance (default 0.1%). Unmatched runs are reported and
  skipped. Runs faster than --min-seconds (default 1ms) on either side
  are score-checked but not time-checked: at that granularity timer
  jitter dwarfs any tolerance and the verdict would be noise. A permutation-fingerprint change with an equal score is
  reported as a note, not a failure (tie-break changes are pinned by
  tests/gorder_golden_test.cpp instead).

Merge mode:
  tools/compare_bench.py SNAPSHOT.json --merge-into=BENCH_ordering.json

  Appends the snapshot's entries to the trajectory file (creating it if
  absent), preserving existing entries — the durable perf trajectory
  grows one labelled entry per recorded milestone.
"""

import argparse
import json
import sys

SCHEMA_NAMES = ("gorder-bench-ordering", "gorder-bench-gen")
SCHEMA_VERSION = 1

MATCH_KEYS = ("dataset", "method", "scale", "seed", "window", "lazy",
              "threads")


def fail(msg):
    print(f"compare_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path, role="snapshot"):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        if role == "baseline":
            fail(f"baseline {path} does not exist — record one first with "
                 f"'tools/compare_bench.py SNAPSHOT.json --merge-into={path}'")
        fail(f"{path} does not exist")
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if doc.get("schema") not in SCHEMA_NAMES:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"want one of {SCHEMA_NAMES}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{path}: schema_version {doc.get('schema_version')!r}, "
             f"want {SCHEMA_VERSION}")
    if not isinstance(doc.get("entries"), list):
        fail(f"{path}: entries must be an array")
    return doc


def run_key(run):
    return tuple(run.get(k) for k in MATCH_KEYS)


def latest_baseline_runs(baseline_doc):
    """Maps run key -> (entry, run), later entries overriding earlier."""
    table = {}
    for entry in baseline_doc["entries"]:
        for run in entry.get("runs", []):
            table[run_key(run)] = (entry, run)
    return table


def compare(snapshot, baseline, tolerance, score_tolerance, min_seconds):
    if snapshot.get("schema") != baseline.get("schema"):
        fail(f"schema mismatch: snapshot is {snapshot.get('schema')!r}, "
             f"baseline is {baseline.get('schema')!r}")
    base_runs = latest_baseline_runs(baseline)
    if not base_runs:
        fail("baseline holds no runs (empty trajectory) — record one "
             "first with --merge-into")
    if not any(e.get("runs") for e in snapshot["entries"]):
        fail("snapshot holds no runs — nothing to compare")
    failures = 0
    compared = 0
    for entry in snapshot["entries"]:
        cal = entry.get("calibration_seconds")
        if not cal or cal <= 0:
            fail(f"snapshot entry {entry.get('label')!r} has no usable "
                 "calibration_seconds")
        for run in entry.get("runs", []):
            key = run_key(run)
            name = "{}/{}@{} w={} lazy={}".format(
                run.get("dataset"), run.get("method"), run.get("scale"),
                run.get("window"), run.get("lazy"))
            if key not in base_runs:
                print(f"  {name}: no baseline run, skipped")
                continue
            base_entry, base_run = base_runs[key]
            base_cal = base_entry.get("calibration_seconds")
            if not base_cal or base_cal <= 0:
                print(f"  {name}: baseline entry "
                      f"{base_entry.get('label')!r} lacks calibration, "
                      "skipped")
                continue
            compared += 1
            new_norm = run["seconds_median"] / cal
            old_norm = base_run["seconds_median"] / base_cal
            ratio = new_norm / old_norm if old_norm > 0 else float("inf")
            if (run["seconds_median"] < min_seconds
                    or base_run["seconds_median"] < min_seconds):
                verdict = "time not checked (sub-ms, jitter-dominated)"
            elif ratio > 1.0 + tolerance:
                verdict = "REGRESSION"
                failures += 1
            elif ratio < 1.0 - tolerance:
                verdict = "improved"
            else:
                verdict = "ok"
            old_score = base_run.get("locality_score", 0)
            new_score = run.get("locality_score", 0)
            if old_score and abs(new_score - old_score) > (
                    score_tolerance * old_score):
                print(f"  {name}: locality score {old_score} -> "
                      f"{new_score} drifts beyond "
                      f"{score_tolerance:.1%}: FAIL")
                failures += 1
            elif base_run.get("perm_fnv1a") != run.get("perm_fnv1a"):
                print(f"  {name}: note: permutation fingerprint changed "
                      f"({base_run.get('perm_fnv1a')} -> "
                      f"{run.get('perm_fnv1a')}), score within tolerance")
            print(f"  {name}: {old_norm:.3f} -> {new_norm:.3f} "
                  f"(normalised, x{ratio:.2f} vs "
                  f"{base_entry.get('label')!r}): {verdict}")
    if compared == 0:
        fail("no snapshot run matched any baseline run — "
             "check dataset/method/scale/window/lazy")
    if failures:
        fail(f"{failures} run(s) regressed beyond tolerance")
    print(f"compare_bench: {compared} run(s) within {tolerance:.0%} of "
          "baseline")


def merge(snapshot, into_path):
    schema = snapshot["schema"]
    try:
        with open(into_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("schema") != schema:
            fail(f"{into_path}: schema is {doc.get('schema')!r}, "
                 f"snapshot is {schema!r} — wrong trajectory file")
    except FileNotFoundError:
        doc = {"schema": schema, "schema_version": SCHEMA_VERSION,
               "entries": []}
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{into_path}: {e}")
    doc["entries"].extend(snapshot["entries"])
    with open(into_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"compare_bench: merged {len(snapshot['entries'])} entr"
          f"{'y' if len(snapshot['entries']) == 1 else 'ies'} into "
          f"{into_path} ({len(doc['entries'])} total)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", help="snapshot JSON from --bench-json")
    parser.add_argument("--baseline", help="trajectory file to compare "
                        "against (compare mode)")
    parser.add_argument("--merge-into", help="trajectory file to append "
                        "the snapshot's entries to (merge mode)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown of "
                        "calibration-normalised time (default 0.25)")
    parser.add_argument("--score-tolerance", type=float, default=0.001,
                        help="allowed fractional locality-score drift "
                        "(default 0.001 = 0.1%%)")
    parser.add_argument("--min-seconds", type=float, default=0.001,
                        help="skip the time check for runs whose raw "
                        "median is below this on either side "
                        "(default 1ms)")
    args = parser.parse_args()
    if bool(args.baseline) == bool(args.merge_into):
        fail("pass exactly one of --baseline (compare) or --merge-into")
    snapshot = load(args.snapshot)
    if args.baseline:
        compare(snapshot, load(args.baseline, role="baseline"),
                args.tolerance, args.score_tolerance, args.min_seconds)
    else:
        merge(snapshot, args.merge_into)
    return 0


if __name__ == "__main__":
    sys.exit(main())
