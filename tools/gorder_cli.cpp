// gorder_cli — command-line front end, mirroring how the original Gorder
// release was used: read an edge list, reorder it, write it back out.
//
// Usage:
//   gorder_cli --cmd=order   --in=g.txt --out=g_gorder.txt
//              [--method=Gorder] [--window=5] [--seed=42] [--threads=N]
//              [--lazy] (Gorder lazy decrements) [--verbose] (per-phase
//              timing: score updates, heap ops, window maintenance)
//   gorder_cli --cmd=stats   --in=g.txt
//   gorder_cli --cmd=score   --in=g.txt [--window=5]
//   gorder_cli --cmd=gen     --dataset=flickr --scale=0.5 --out=g.txt
//   gorder_cli --cmd=gen     --tier=huge --dataset=rmat-huge --scale=0.125
//              --out=g.gpack [--chunk-edges=N] [--mem-budget=MB]
//              (chunk-parallel streaming generation straight into a pack;
//               huge-tier datasets never exist as an in-RAM edge list)
//   gorder_cli --cmd=convert --in=g.txt --out=g.bin      (text <-> binary
//                                                         by extension)
//   gorder_cli --cmd=algo    --in=g.txt --algo=pr|bfs|sp|wcc|tc
//              [--iters=20] [--source=N] [--repeats=3] [--threads=N]
//   gorder_cli --cmd=pack    --dataset=pokec --store-dir=store
//                            [--scale=0.25] [--seed=42]
//              (generates the dataset into its canonical store pack; or
//               --in=g.txt --out=g.gpack to pack an arbitrary graph; or
//               --rmat-scale=20 [--rmat-edge-factor=16] --out=g.gpack to
//               pack a synthetic R-MAT stream)
//   gorder_cli --cmd=info    --in=g.gpack   (header + section table +
//                                            peak-memory estimates)
//   gorder_cli --cmd=verify  --in=g.gpack   (full integrity check:
//               checksums, CSR invariants, content fingerprint; exit 0
//               iff the pack is intact)
//
// Graph file formats by extension: .txt edge list, .bin legacy binary,
// .gpack mmap-able store pack (any command's --in/--out accepts any of
// them; --cmd=convert translates between all three).
//
// Methods: Original Random MinLA MinLogA RCM InDegSort ChDFS SlashBurn
//          LDG Gorder Metis OutDegSort HubSort HubCluster DBG BOBA
//
// --threads=N (or the GORDER_THREADS env var) sizes the shared thread
// pool used by graph build, relabel, edge-list parsing and the untraced
// algorithm kernels (--cmd=algo); --threads=1 is fully serial and
// produces identical output at any thread count.
//
// Out-of-core mode (DESIGN.md §18): --extmem [--mem-budget=<MB>] on
// --cmd=pack builds the .gpack through the external sort/merge pipeline
// (bounded RAM, disk-backed runs), and on --cmd=order runs the ordering
// semi-externally over a mapped pack (vertex state in RAM, adjacency
// paged from disk; bit-identical output). --cmd=order --extmem emits the
// permutation via --map; relabeling stays an in-memory operation.
//
// Every command also accepts --quiet (silence stderr narration),
// --json-out=<f> (machine-readable run report, written at exit) and
// --trace-out=<f> (Chrome trace for Perfetto).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/gorder_lib.h"
#include "util/failpoint.h"

namespace gorder {
namespace {

/// --failpoints=<spec> arms fault-injection points (DESIGN.md §14). A
/// bad spec is fatal, and so is passing the flag to a binary built
/// without -DGORDER_FAILPOINTS=ON — a fault-injection run must never
/// silently execute fault-free.
void ArmFailpointsFlag(const std::string& spec) {
  if (spec.empty()) return;
#if defined(GORDER_FAILPOINTS_ENABLED)
  std::string error;
  if (!util::ArmFailpointsFromSpec(spec, &error)) {
    std::fprintf(stderr, "--failpoints: %s\n", error.c_str());
    std::exit(2);
  }
#else
  std::fprintf(stderr,
               "--failpoints requires a -DGORDER_FAILPOINTS=ON build; "
               "this binary has fault injection compiled out\n");
  std::exit(2);
#endif
}

bool EndsWith(const std::string& s, const char* suffix) {
  std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int LoadGraph(const std::string& path, Graph* g) {
  IoResult r = EndsWith(path, ".gpack") ? store::LoadPack(path, g)
               : EndsWith(path, ".bin") ? ReadBinary(path, g)
                                        : ReadEdgeList(path, g);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  return 0;
}

int StoreGraph(const std::string& path, const Graph& g) {
  IoResult r = EndsWith(path, ".gpack") ? store::WritePack(path, g)
               : EndsWith(path, ".bin") ? WriteBinary(path, g)
                                        : WriteEdgeList(path, g);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  return 0;
}

/// Validated dataset lookup for user-supplied --dataset flags: prints
/// the registry on a miss and returns nullptr (callers exit 2, usage
/// error) instead of aborting. Huge-tier names resolve only under an
/// explicit --tier=huge — a typo must not kick off a 10^9-edge stream.
const gen::DatasetSpec* RequireDatasetSpec(const Flags& flags,
                                           const std::string& name) {
  const std::string tier = flags.GetString("tier", "std");
  if (tier != "std" && tier != "huge") {
    std::fprintf(stderr, "error: --tier must be std or huge (got '%s')\n",
                 tier.c_str());
    return nullptr;
  }
  const bool huge = tier == "huge";
  const gen::DatasetSpec* spec = gen::FindDatasetSpec(name);
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "error: unknown dataset '%s'\n"
                 "valid names: %s\n"
                 "huge tier (--tier=huge): %s\n",
                 name.c_str(), gen::DatasetNames().c_str(),
                 gen::DatasetNames(gen::DatasetTier::kHuge).c_str());
    return nullptr;
  }
  if (spec->tier == gen::DatasetTier::kHuge && !huge) {
    std::fprintf(stderr,
                 "error: '%s' is a huge-tier streaming dataset; opt in "
                 "with --tier=huge (and --out=<f.gpack>)\n",
                 name.c_str());
    return nullptr;
  }
  return spec;
}

/// Chunked-generation knobs shared by the streaming paths. The chunk
/// size is part of the determinism contract (the stream is a function of
/// (params, seed, chunk_edges)), so it is a flag, not a budget-derived
/// value.
gen::ChunkedOptions ChunkedFromFlags(const Flags& flags) {
  gen::ChunkedOptions options;
  options.chunk_edges =
      static_cast<std::size_t>(flags.GetInt("chunk-edges", 1u << 18));
  return options;
}

/// Shared --extmem knobs: --mem-budget=<MB> bounds the streaming buffers
/// of the out-of-core pipeline (run buffer, merge reads, write window).
extmem::ExtmemOptions ExtmemFromFlags(const Flags& flags) {
  extmem::ExtmemOptions options;
  options.mem_budget_bytes =
      static_cast<std::uint64_t>(flags.GetInt("mem-budget", 256)) << 20;
  options.scratch_dir = flags.GetString("scratch-dir", "");
  return options;
}

void ReportExtBuild(const extmem::ExtBuildStats& s) {
  GORDER_LOG_INFO(
      "extmem build: %llu edges ingested -> %llu final, %llu runs "
      "(%.1f MB scratch), %llu merge passes, %llu window remaps\n",
      static_cast<unsigned long long>(s.edges_ingested),
      static_cast<unsigned long long>(s.edges_final),
      static_cast<unsigned long long>(s.runs_written),
      static_cast<double>(s.run_bytes) / (1 << 20),
      static_cast<unsigned long long>(s.merge_passes),
      static_cast<unsigned long long>(s.window_remaps));
}

int WritePermMap(const std::string& map_path, const std::vector<NodeId>& perm) {
  std::FILE* f = std::fopen(map_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", map_path.c_str());
    return 1;
  }
  std::fprintf(f, "# old_id new_id\n");
  for (NodeId v = 0; v < perm.size(); ++v) {
    std::fprintf(f, "%u %u\n", v, perm[v]);
  }
  std::fclose(f);
  return 0;
}

order::OrderingParams OrderingParamsFromFlags(const Flags& flags) {
  order::OrderingParams params;
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  params.window = static_cast<NodeId>(flags.GetInt("window", 5));
  params.gorder_lazy_decrements = flags.GetBool("lazy", false);
  return params;
}

/// Semi-external ordering: vertex state in RAM, adjacency paged from the
/// mapped pack. Emits the permutation (--map); relabeling would pull the
/// whole graph into memory, so it is deliberately not offered here.
int CmdOrderExtmem(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  if (!EndsWith(in, ".gpack")) {
    std::fprintf(stderr,
                 "error: --cmd=order --extmem needs --in=<f.gpack> "
                 "(build one with --cmd=pack --extmem)\n");
    return 2;
  }
  const order::OrderingParams params = OrderingParamsFromFlags(flags);
  const auto method =
      order::MethodFromName(flags.GetString("method", "Gorder"));
  Timer timer;
  std::vector<NodeId> perm;
  extmem::SemiExternalInfo info;
  IoResult r = extmem::SemiExternalOrder(in, method, params, &perm, &info);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  GORDER_LOG_INFO(
      "%s (semi-external): %.3fs, %.1f MB pack mapped%s, %d threads\n",
      order::MethodName(method).c_str(), timer.Seconds(),
      static_cast<double>(info.pack_bytes) / (1 << 20),
      info.zero_copy ? " zero-copy" : "", NumThreads());
  if (flags.Has("out")) {
    std::fprintf(stderr,
                 "note: --out ignored with --extmem (relabel is in-memory); "
                 "the permutation goes to --map\n");
  }
  const std::string map_path = flags.GetString("map", "");
  if (!map_path.empty()) return WritePermMap(map_path, perm);
  return 0;
}

int CmdOrder(const Flags& flags) {
  if (flags.GetBool("extmem", false)) return CmdOrderExtmem(flags);
  Graph g;
  if (LoadGraph(flags.GetString("in", ""), &g) != 0) return 1;
  order::OrderingParams params = OrderingParamsFromFlags(flags);
  auto method = order::MethodFromName(flags.GetString("method", "Gorder"));
  const bool verbose = flags.GetBool("verbose", false);
  // Ordering and relabel wall times are reported separately: the total is
  // the pipeline cost that must be amortised by downstream speedups
  // (Faldu et al., IISWC 2020).
  Timer timer;
  std::vector<NodeId> perm;
  if (verbose && method == order::Method::kGorder) {
    // Per-phase cost breakdown (a timed kernel run; the permutation is
    // bit-identical to the untimed one).
    order::GorderPhaseStats stats;
    perm = order::GorderOrder(g, params, &stats);
    auto pct = [&stats](double s) {
      return 100.0 * s / std::max(stats.total_seconds, 1e-12);
    };
    std::printf("Gorder phase breakdown (total %.3fs):\n",
                stats.total_seconds);
    std::printf("  init (heap build + seed):   %8.3fs  %5.1f%%\n",
                stats.init_seconds, pct(stats.init_seconds));
    std::printf("  score updates (entry/exit): %8.3fs  %5.1f%%  "
                "(%llu updates)\n",
                stats.score_seconds, pct(stats.score_seconds),
                static_cast<unsigned long long>(stats.score_updates));
    std::printf("  heap extract (+refiles):    %8.3fs  %5.1f%%  "
                "(%llu places, %llu refiles)\n",
                stats.extract_seconds, pct(stats.extract_seconds),
                static_cast<unsigned long long>(stats.places),
                static_cast<unsigned long long>(stats.lazy_refiles));
    std::printf("  window maintenance (rest):  %8.3fs  %5.1f%%\n",
                stats.window_seconds, pct(stats.window_seconds));
  } else {
    if (verbose) {
      GORDER_LOG_INFO("--verbose phase breakdown is Gorder-only; timing "
                      "%s normally\n",
                      order::MethodName(method).c_str());
    }
    perm = order::ComputeOrdering(g, method, params);
  }
  double order_s = timer.Seconds();
  timer.Reset();
  Graph h = g.Relabel(perm);
  double relabel_s = timer.Seconds();
  GORDER_LOG_INFO(
      "%s: ordering %.3fs, relabel %.3fs (total %.3fs, %d threads)\n",
      order::MethodName(method).c_str(), order_s, relabel_s,
      order_s + relabel_s, NumThreads());
  std::string map_path = flags.GetString("map", "");
  if (!map_path.empty() && WritePermMap(map_path, perm) != 0) return 1;
  return StoreGraph(flags.GetString("out", "out.txt"), h);
}

int CmdStats(const Flags& flags) {
  Graph g;
  if (LoadGraph(flags.GetString("in", ""), &g) != 0) return 1;
  GraphStats s = ComputeStats(g);
  std::printf("nodes:          %u\n", s.num_nodes);
  std::printf("edges:          %llu\n",
              static_cast<unsigned long long>(s.num_edges));
  std::printf("avg degree:     %.2f\n", s.avg_degree);
  std::printf("max out-degree: %u\n", s.max_out_degree);
  std::printf("max in-degree:  %u\n", s.max_in_degree);
  std::printf("csr bytes:      %zu\n", s.memory_bytes);
  std::printf("bandwidth:      %u\n", Bandwidth(g));
  std::printf("minla energy:   %.4g\n", LinearArrangementCost(g));
  std::printf("minloga energy: %.4g\n", LogArrangementCost(g));
  auto cg = compress::CompressedGraph::FromGraph(g);
  std::printf("gap bits/edge:  %.2f\n", cg.BitsPerEdge());
  LocalityProfile p = ComputeLocalityProfile(g);
  std::printf("avg gap:        %.1f\n", p.avg_gap);
  std::printf("avg log2 gap:   %.2f\n", p.avg_log2_gap);
  std::printf("same-line frac: %.1f%%\n", 100 * p.same_line_fraction);
  std::printf("gap<=5 frac:    %.1f%%\n", 100 * p.within_window5);
  std::printf("gap<=1024 frac: %.1f%%\n", 100 * p.within_window1024);
  return 0;
}

int CmdScore(const Flags& flags) {
  Graph g;
  if (LoadGraph(flags.GetString("in", ""), &g) != 0) return 1;
  auto w = static_cast<NodeId>(flags.GetInt("window", 5));
  std::printf("F(identity, w=%u) = %llu\n", w,
              static_cast<unsigned long long>(GorderScore(g, w)));
  return 0;
}

/// Streams a huge-tier dataset chunk-parallel into a .gpack through the
/// external build pipeline. Peak RAM is the extmem budget plus the
/// chunk window — never the edge list, which only ever exists as an
/// ordered sequence of per-chunk buffers in flight.
int StreamHugePack(const Flags& flags, const std::string& name,
                   const std::string& out) {
  if (!EndsWith(out, ".gpack")) {
    std::fprintf(stderr,
                 "error: huge-tier datasets are stream-only; pass "
                 "--out=<f.gpack> (got '%s')\n",
                 out.c_str());
    return 2;
  }
  const double scale = flags.GetDouble("scale", 1.0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const gen::ChunkedOptions chunked = ChunkedFromFlags(flags);
  Timer timer;
  extmem::ExtBuildStats stats;
  NodeId num_nodes = 0;
  IoResult r = extmem::BuildPackFromEdgeStream(
      [&](const std::function<IoResult(const Edge*, std::size_t)>& sink) {
        return gen::StreamDataset(name, scale, seed, chunked, sink,
                                  &num_nodes);
      },
      /*reserve_nodes=*/0, out, ExtmemFromFlags(flags), &stats);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  ReportExtBuild(stats);
  GORDER_LOG_INFO("%s: %.3fs (%.1f Medges/s attempts, %d threads)\n",
                  name.c_str(), timer.Seconds(),
                  static_cast<double>(stats.edges_ingested) / 1e6 /
                      std::max(timer.Seconds(), 1e-12),
                  NumThreads());
  std::printf("%s\n", out.c_str());
  return 0;
}

int CmdGen(const Flags& flags) {
  std::string name = flags.GetString("dataset", "epinion");
  const gen::DatasetSpec* spec = RequireDatasetSpec(flags, name);
  if (spec == nullptr) return 2;
  if (spec->tier == gen::DatasetTier::kHuge) {
    return StreamHugePack(flags, name, flags.GetString("out", ""));
  }
  double scale = flags.GetDouble("scale", 0.25);
  auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  Graph g = gen::MakeDataset(name, scale, seed);
  GORDER_LOG_INFO("generated %s: n=%u m=%llu\n", name.c_str(),
                  g.NumNodes(), static_cast<unsigned long long>(g.NumEdges()));
  return StoreGraph(flags.GetString("out", name + ".txt"), g);
}

/// Packs a graph into the gpack container. Two modes:
///   --dataset=<name> [--store-dir=<d>] [--scale --seed [--out]]
///       generates the dataset and writes its canonical store pack
///       (or --out if given);
///   --in=<graph file> --out=<f.gpack>
///       packs an existing graph file.
/// Packs a synthetic R-MAT stream. The same chunked generator feeds both
/// paths — chunks into the ExtPackBuilder with --extmem, chunks into an
/// in-memory Graph::Builder without — so the two modes produce identical
/// packs and differ only in peak RAM (the basis of the memory-capped CI
/// comparison).
int PackRmatStream(const Flags& flags, const std::string& out) {
  if (out.empty()) {
    std::fprintf(stderr, "error: --rmat-scale needs --out=<f.gpack>\n");
    return 2;
  }
  gen::RmatParams rp;
  rp.scale = static_cast<int>(flags.GetInt("rmat-scale", 20));
  rp.num_edges = static_cast<EdgeId>(flags.GetInt("rmat-edge-factor", 16))
                 << rp.scale;
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const extmem::ExtmemOptions options = ExtmemFromFlags(flags);
  // Chunk size is fixed by the generator contract (determinism depends on
  // it), so both modes use the same value regardless of budget.
  const std::size_t chunk_edges = 1u << 18;
  const auto n = static_cast<NodeId>(1u << rp.scale);
  IoResult r;
  if (flags.GetBool("extmem", false)) {
    extmem::ExtPackBuilder builder(options);
    r = builder.Begin(out);
    if (r.ok) {
      builder.ReserveNodes(n);
      r = gen::StreamRmat(rp, seed, chunk_edges,
                          [&](const Edge* edges, std::size_t count) {
                            return builder.AddBatch(edges, count);
                          });
    }
    if (r.ok) r = builder.Finish();
    if (r.ok) ReportExtBuild(builder.stats());
  } else {
    Graph::Builder b(n);
    b.ReserveEdges(static_cast<std::size_t>(rp.num_edges));
    r = gen::StreamRmat(rp, seed, chunk_edges,
                        [&](const Edge* edges, std::size_t count) {
                          for (std::size_t i = 0; i < count; ++i) {
                            b.AddEdge(edges[i].src, edges[i].dst);
                          }
                          return IoResult::Ok();
                        });
    if (r.ok) r = store::WritePack(out, b.Build());
  }
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("%s\n", out.c_str());
  return 0;
}

int CmdPack(const Flags& flags) {
  std::string in = flags.GetString("in", "");
  std::string out = flags.GetString("out", "");
  std::string dataset = flags.GetString("dataset", "");
  if (flags.Has("rmat-scale")) return PackRmatStream(flags, out);
  if (flags.GetBool("extmem", false)) {
    if (in.empty() || out.empty() || EndsWith(in, ".gpack") ||
        EndsWith(in, ".bin")) {
      std::fprintf(stderr,
                   "error: --cmd=pack --extmem streams a text edge list: "
                   "--in=<g.txt> --out=<f.gpack> (or --rmat-scale=<N>)\n");
      return 2;
    }
    extmem::ExtBuildStats stats;
    IoResult r =
        extmem::StreamEdgeListToPack(in, out, ExtmemFromFlags(flags), &stats);
    if (!r.ok) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
    ReportExtBuild(stats);
    std::printf("%s\n", out.c_str());
    return 0;
  }
  Graph g;
  if (!dataset.empty()) {
    const gen::DatasetSpec* spec = RequireDatasetSpec(flags, dataset);
    if (spec == nullptr) return 2;
    if (spec->tier == gen::DatasetTier::kHuge) {
      return StreamHugePack(flags, dataset, out);
    }
    double scale = flags.GetDouble("scale", 0.25);
    auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
    std::string store_dir = flags.GetString("store-dir", "");
    if (out.empty()) {
      if (store_dir.empty()) {
        std::fprintf(stderr,
                     "error: --cmd=pack --dataset needs --store-dir "
                     "(canonical pack path) or --out=<f.gpack>\n");
        return 2;
      }
      out = store::Store(store_dir).PackPath(dataset, scale, seed);
    }
    g = gen::MakeDataset(dataset, scale, seed);
  } else if (!in.empty()) {
    if (out.empty()) {
      std::fprintf(stderr, "error: --cmd=pack --in needs --out=<f.gpack>\n");
      return 2;
    }
    if (LoadGraph(in, &g) != 0) return 1;
  } else {
    std::fprintf(stderr,
                 "error: --cmd=pack needs --dataset=<name> or --in=<file>\n");
    return 2;
  }
  IoResult r = store::WritePack(out, g);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  GORDER_LOG_INFO("packed n=%u m=%llu -> %s\n", g.NumNodes(),
                  static_cast<unsigned long long>(g.NumEdges()), out.c_str());
  std::printf("%s\n", out.c_str());
  return 0;
}

int CmdInfo(const Flags& flags) {
  std::string path = flags.GetString("in", "");
  store::GpackInfo info;
  IoResult r = store::ReadPackInfo(path, &info);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("file:        %s (%llu bytes)\n", path.c_str(),
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("format:      gpack v%u, flags=0x%llx\n", info.format_version,
              static_cast<unsigned long long>(info.flags));
  std::printf("nodes:       %llu\n",
              static_cast<unsigned long long>(info.num_nodes));
  std::printf("edges:       %llu\n",
              static_cast<unsigned long long>(info.num_edges));
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(info.fingerprint));
  std::printf("sections:\n");
  for (const auto& s : info.sections) {
    std::printf("  %-13s id=%u item=%uB offset=%-10llu bytes=%-12llu "
                "crc32=%08x\n",
                s.name.c_str(), s.id, s.item_bytes,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.bytes), s.crc32);
  }
  // Peak-RSS estimates (dominant terms) so users can judge whether this
  // graph needs --extmem on their machine.
  const extmem::MemoryEstimates est = extmem::EstimateMemory(
      info.num_nodes, info.num_edges, ExtmemFromFlags(flags));
  auto mb = [](std::uint64_t b) { return static_cast<double>(b) / (1 << 20); };
  std::printf("memory estimates (peak RSS, --mem-budget=%lld MB):\n",
              static_cast<long long>(flags.GetInt("mem-budget", 256)));
  std::printf("  mmap load (address space):   %10.1f MB\n",
              mb(est.pack_file_bytes));
  std::printf("  in-memory load (copy):       %10.1f MB\n",
              mb(est.copy_load_bytes));
  std::printf("  in-memory build (FromEdges): %10.1f MB\n",
              mb(est.inmem_build_peak_bytes));
  std::printf("  extmem build (--extmem):     %10.1f MB\n",
              mb(est.extmem_build_bytes));
  std::printf("  semi-external order state:   %10.1f MB\n",
              mb(est.gorder_state_bytes));
  return 0;
}

int CmdVerify(const Flags& flags) {
  std::string path = flags.GetString("in", "");
  IoResult r = store::VerifyPack(path);
  if (!r.ok) {
    std::fprintf(stderr, "verify FAILED: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("%s: OK\n", path.c_str());
  return 0;
}

int CmdConvert(const Flags& flags) {
  Graph g;
  if (LoadGraph(flags.GetString("in", ""), &g) != 0) return 1;
  return StoreGraph(flags.GetString("out", "out.bin"), g);
}

/// Runs one benchmark kernel on the loaded graph — the CLI surface for
/// the parallel algorithm kernels. Prints a result fingerprint (so runs
/// at different --threads can be diffed for the bit-identity contract)
/// and the median wall time.
int CmdAlgo(const Flags& flags) {
  Graph g;
  if (LoadGraph(flags.GetString("in", ""), &g) != 0) return 1;
  if (g.NumNodes() == 0) {
    std::fprintf(stderr, "error: graph is empty\n");
    return 1;
  }
  const std::string name = flags.GetString("algo", "pr");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const int iters = static_cast<int>(flags.GetInt("iters", 20));
  NodeId src = 0;
  if (flags.Has("source")) {
    src = static_cast<NodeId>(flags.GetInt("source", 0));
    if (src >= g.NumNodes()) {
      std::fprintf(stderr, "error: --source=%u out of range (n=%u)\n", src,
                   g.NumNodes());
      return 1;
    }
  } else {
    for (NodeId v = 1; v < g.NumNodes(); ++v) {
      if (g.OutDegree(v) > g.OutDegree(src)) src = v;
    }
  }

  double best = 0.0;
  std::string summary;
  char buf[256];
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    if (name == "pr") {
      auto res = algo::PageRank(g, iters);
      std::snprintf(buf, sizeof(buf), "iters=%d total_mass=%.17g",
                    res.iterations, res.total_mass);
    } else if (name == "bfs") {
      auto res = algo::BfsForest(g);
      std::snprintf(buf, sizeof(buf),
                    "reached=%u sum_levels=%llu", res.num_reached,
                    static_cast<unsigned long long>(res.sum_levels));
    } else if (name == "sp") {
      auto res = algo::Sp(g, src);
      std::snprintf(buf, sizeof(buf),
                    "source=%u reached=%u ecc=%u rounds=%u", src,
                    res.num_reached, res.max_dist, res.num_rounds);
    } else if (name == "wcc") {
      auto res = algo::Wcc(g);
      std::snprintf(buf, sizeof(buf), "components=%u largest=%u",
                    res.num_components, res.largest_component);
    } else if (name == "tc") {
      std::snprintf(buf, sizeof(buf), "triangles=%llu",
                    static_cast<unsigned long long>(algo::TriangleCount(g)));
    } else {
      std::fprintf(stderr, "error: unknown --algo=%s (pr bfs sp wcc tc)\n",
                   name.c_str());
      return 2;
    }
    double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
    summary = buf;
  }
  std::printf("%s: %s\n", name.c_str(), summary.c_str());
  GORDER_LOG_INFO("%s: best of %d runs %.3fs (%d threads)\n", name.c_str(),
                  repeats, best, NumThreads());
  return 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  if (flags.GetBool("quiet", false)) SetLogLevel(LogLevel::kQuiet);
  ArmFailpointsFlag(flags.GetString("failpoints", ""));
  obs::RunOptions run;
  run.bench = "gorder_cli";
  run.flags = flags.Raw();
  run.json_out = flags.GetString("json-out", "");
  run.trace_out = flags.GetString("trace-out", "");
  obs::StartRun(run);
  std::string cmd = flags.GetString("cmd", "");
  if (cmd == "order") return CmdOrder(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "score") return CmdScore(flags);
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "convert") return CmdConvert(flags);
  if (cmd == "algo") return CmdAlgo(flags);
  if (cmd == "pack") return CmdPack(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "verify") return CmdVerify(flags);
  std::fprintf(stderr,
               "usage: gorder_cli --cmd=order|stats|score|gen|convert|algo"
               "|pack|info|verify ...\n"
               "see the header of tools/gorder_cli.cpp for details\n");
  return 2;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) { return gorder::Run(argc, argv); }
