#!/usr/bin/env python3
"""Validates gorderd /metrics scrapes (Prometheus text format v0.0.4).

Stdlib-only so it runs anywhere python3 exists (CI daemon-smoke job).

Single-scrape mode checks well-formedness:

  tools/check_metrics.py SCRAPE.txt [--require SERIES ...]

  Every sample line must parse as `name[{labels}] value`, every metric
  must be preceded by a `# TYPE` comment, histogram bucket series must
  be cumulative (non-decreasing in `le`), and every --require SERIES
  (exact series key, labels included) must be present.

Two-scrape mode additionally checks counter monotonicity:

  tools/check_metrics.py SCRAPE1.txt SCRAPE2.txt [--require SERIES ...]

  Every series of a `counter`-typed metric present in SCRAPE1 must be
  present in SCRAPE2 with a value >= its SCRAPE1 value (the daemon never
  resets counters while running). --require is checked against SCRAPE2.

Exit 0 when all checks pass, 1 with a per-failure message otherwise.
"""

import argparse
import sys


def fail(msg):
    print(f"check_metrics: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_scrape(path):
    """Returns (types, samples): metric name -> type, series key -> value.

    A series key is the sample line's name + label block verbatim, e.g.
    'gorder_serve_req_us_bfs{window="10s",quantile="0.99"}'.
    """
    types = {}
    samples = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        # name[{labels}] value
        if "}" in line:
            series, _, value_text = line.rpartition(" ")
            if not series.endswith("}") or "{" not in series:
                fail(f"{path}:{lineno}: malformed labelled sample: {line!r}")
        else:
            fields = line.split()
            if len(fields) != 2:
                fail(f"{path}:{lineno}: malformed sample: {line!r}")
            series, value_text = fields
        try:
            value = float(value_text)
        except ValueError:
            fail(f"{path}:{lineno}: non-numeric value: {line!r}")
        if series in samples:
            fail(f"{path}:{lineno}: duplicate series {series!r}")
        samples[series] = value
    if not samples:
        fail(f"{path}: scrape holds no samples")
    return types, samples


def metric_name(series):
    return series.split("{", 1)[0]


def base_metric(series, types):
    """Maps a series to its # TYPE name (strips _total/_bucket/_sum/_count)."""
    name = metric_name(series)
    for suffix in ("", "_total", "_bucket", "_sum", "_count"):
        candidate = name[: len(name) - len(suffix)] if suffix else name
        if name.endswith(suffix) and candidate in types:
            return candidate
    return None


def check_well_formed(path, types, samples):
    failures = 0
    buckets = {}  # metric -> list of (le, value) in file order
    for series, value in samples.items():
        base = base_metric(series, types)
        if base is None:
            print(f"check_metrics: {path}: series {series!r} has no "
                  f"# TYPE comment", file=sys.stderr)
            failures += 1
            continue
        if types[base] == "counter" and value < 0:
            print(f"check_metrics: {path}: counter {series!r} is negative",
                  file=sys.stderr)
            failures += 1
        if metric_name(series).endswith("_bucket") and 'le="' in series:
            buckets.setdefault(base, []).append(value)
    for base, values in buckets.items():
        if any(b < a for a, b in zip(values, values[1:])):
            print(f"check_metrics: {path}: histogram {base!r} buckets are "
                  f"not cumulative: {values}", file=sys.stderr)
            failures += 1
    return failures


def check_monotonic(path1, path2, types1, samples1, types2, samples2):
    failures = 0
    for series, old in samples1.items():
        base = base_metric(series, types1)
        if base is None or types1.get(base) != "counter":
            continue
        if series not in samples2:
            print(f"check_metrics: counter {series!r} present in {path1} "
                  f"but missing from {path2}", file=sys.stderr)
            failures += 1
            continue
        new = samples2[series]
        if new < old:
            print(f"check_metrics: counter {series!r} went backwards: "
                  f"{old} -> {new}", file=sys.stderr)
            failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scrapes", nargs="+",
                        help="one or two /metrics scrape files")
    parser.add_argument("--require", action="append", default=[],
                        help="series key (labels included) that must be "
                        "present in the (last) scrape; repeatable")
    args = parser.parse_args()
    if len(args.scrapes) > 2:
        fail("pass one or two scrape files")
    parsed = [parse_scrape(p) for p in args.scrapes]
    failures = 0
    for path, (types, samples) in zip(args.scrapes, parsed):
        failures += check_well_formed(path, types, samples)
    if len(parsed) == 2:
        failures += check_monotonic(args.scrapes[0], args.scrapes[1],
                                    *parsed[0], *parsed[1])
    final_samples = parsed[-1][1]
    for series in args.require:
        if series not in final_samples:
            print(f"check_metrics: required series {series!r} missing from "
                  f"{args.scrapes[-1]}", file=sys.stderr)
            failures += 1
    if failures:
        fail(f"{failures} check(s) failed")
    counters = sum(1 for t in parsed[-1][0].values() if t == "counter")
    print(f"check_metrics: ok ({len(final_samples)} series, "
          f"{counters} counter metrics, {len(args.require)} required "
          f"series present)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
