// gorderd — ordering-as-a-service daemon (DESIGN.md §16).
//
// Serves graph queries (neighbours, BFS/SP from a source, PageRank
// top-k, "order this uploaded edge list") over the length-prefixed
// binary protocol of serve/protocol.h, against a graph snapshot that is
// typically an mmap'd .gpack — zero-copy, shared read-only across all
// worker threads. A kSwapPack request republishes a new pack atomically
// while in-flight readers drain on the old epoch.
//
// Usage:
//   gorderd --listen=unix:/tmp/gorderd.sock --pack=graph.gpack
//   gorderd --listen=tcp:7077 --in=graph.txt [--serve-threads=4]
//           [--queue-capacity=128] [--max-connections=64]
//           [--no-swap] [--no-shutdown] [--max-seconds=N]
//           [--admin-addr=tcp:PORT] [--trace-sample=64]
//           [--slow-request-ms=N]
//           [--threads=N] [--quiet] [--json-out=f] [--trace-out=f]
//           [--failpoints=spec]
//
// `--listen=tcp:0` binds an ephemeral port. Once serving, the daemon
// prints readiness lines to stdout —
//
//   ADMIN <resolved admin address>      (only with --admin-addr)
//   LISTENING <resolved address>
//
// — and flushes, so scripts can wait for readiness and learn the ports
// without races (LISTENING is always the last line). It then blocks
// until a client sends kShutdown, SIGINT/SIGTERM arrives, or
// --max-seconds elapses (for CI smoke jobs); any of these drain the
// queue, flush the --json-out report, and exit 0.
//
// `--admin-addr` opens the HTTP observability plane (DESIGN.md §17):
// GET /metrics, /healthz, /tracez. `--trace-sample=N` records 1-in-N
// requests in the trace ring (0 = off); `--slow-request-ms=T` logs and
// force-samples requests slower than T ms.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/gorder_lib.h"
#include "util/failpoint.h"

namespace gorder {
namespace {

void ArmFailpointsFlag(const std::string& spec) {
  if (spec.empty()) return;
#if defined(GORDER_FAILPOINTS_ENABLED)
  std::string error;
  if (!util::ArmFailpointsFromSpec(spec, &error)) {
    std::fprintf(stderr, "--failpoints: %s\n", error.c_str());
    std::exit(2);
  }
#else
  std::fprintf(stderr,
               "--failpoints requires a -DGORDER_FAILPOINTS=ON build; "
               "this binary has fault injection compiled out\n");
  std::exit(2);
#endif
}

bool EndsWith(const std::string& s, const char* suffix) {
  std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// SIGINT/SIGTERM request a graceful shutdown: the handler only flips a
/// flag (async-signal-safe); the main loop polls it and runs the same
/// drain path as a client kShutdown, so the --json-out report is still
/// written. A second signal while draining falls through to the default
/// disposition (handlers are one-shot via SA_RESETHAND) and kills the
/// process — the escape hatch for a wedged drain.
volatile std::sig_atomic_t g_signal_shutdown = 0;

void HandleShutdownSignal(int) { g_signal_shutdown = 1; }

void InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  if (flags.GetBool("quiet", false)) SetLogLevel(LogLevel::kQuiet);
  ArmFailpointsFlag(flags.GetString("failpoints", ""));
  obs::RunOptions run;
  run.bench = "gorderd";
  run.flags = flags.Raw();
  run.json_out = flags.GetString("json-out", "");
  run.trace_out = flags.GetString("trace-out", "");
  obs::StartRun(run);

  serve::ServerOptions opts;
  const std::string listen = flags.GetString("listen", "");
  std::string parse_error;
  if (listen.empty() ||
      !util::ParseNetAddress(listen, &opts.listen, &parse_error)) {
    std::fprintf(stderr,
                 "usage: gorderd --listen=unix:/path|tcp:PORT "
                 "--pack=f.gpack|--in=<graph file>\n%s\n",
                 parse_error.c_str());
    return 2;
  }
  opts.serve_threads = static_cast<int>(flags.GetInt("serve-threads", 2));
  opts.queue_capacity = static_cast<int>(flags.GetInt("queue-capacity", 128));
  opts.max_connections = static_cast<int>(flags.GetInt("max-connections", 64));
  opts.allow_swap = !flags.GetBool("no-swap", false);
  opts.allow_shutdown = !flags.GetBool("no-shutdown", false);
  if (opts.serve_threads < 1 || opts.queue_capacity < 1 ||
      opts.max_connections < 1) {
    std::fprintf(stderr,
                 "error: --serve-threads, --queue-capacity and "
                 "--max-connections must be positive\n");
    return 2;
  }
  const std::string admin_addr = flags.GetString("admin-addr", "");
  if (!admin_addr.empty()) {
    if (!util::ParseNetAddress(admin_addr, &opts.admin_listen,
                               &parse_error)) {
      std::fprintf(stderr, "--admin-addr: %s\n", parse_error.c_str());
      return 2;
    }
    opts.admin_enabled = true;
  }
  const std::int64_t trace_sample = flags.GetInt("trace-sample", 64);
  const std::int64_t slow_ms = flags.GetInt("slow-request-ms", 0);
  if (trace_sample < 0 || trace_sample > 0xFFFFFFFFll || slow_ms < 0) {
    std::fprintf(stderr,
                 "error: --trace-sample must be in [0, 2^32) and "
                 "--slow-request-ms must be non-negative\n");
    return 2;
  }
  opts.trace_sample = static_cast<std::uint32_t>(trace_sample);
  opts.slow_request_ms = static_cast<int>(slow_ms);

  const std::string pack = flags.GetString("pack", "");
  const std::string in = pack.empty() ? flags.GetString("in", "") : pack;
  if (in.empty()) {
    std::fprintf(stderr, "error: gorderd needs --pack=<f.gpack> or --in\n");
    return 2;
  }
  Graph g;
  IoResult r = EndsWith(in, ".gpack") ? store::LoadPack(in, &g)
               : EndsWith(in, ".bin") ? ReadBinary(in, &g)
                                      : ReadEdgeList(in, &g);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  GORDER_LOG_INFO("gorderd: serving n=%u m=%llu from %s%s\n", g.NumNodes(),
                  static_cast<unsigned long long>(g.NumEdges()), in.c_str(),
                  g.IsMapped() ? " (zero-copy mmap)" : "");

  serve::Server server(std::move(g), opts);
  r = server.Start();
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  if (opts.admin_enabled) {
    util::NetAddress admin_bound = server.options().admin_listen;
    if (!admin_bound.is_unix && admin_bound.port == 0) {
      admin_bound.port = server.AdminPort();
    }
    std::printf("ADMIN %s\n", admin_bound.ToString().c_str());
  }
  util::NetAddress bound = server.options().listen;
  if (!bound.is_unix && bound.port == 0) bound.port = server.Port();
  std::printf("LISTENING %s\n", bound.ToString().c_str());
  std::fflush(stdout);

  InstallSignalHandlers();
  // Poll in short slices so a SIGINT/SIGTERM is noticed promptly even
  // though WaitForShutdown only wakes for client kShutdown requests.
  const double max_seconds = flags.GetDouble("max-seconds", 0.0);
  Timer uptime;
  while (true) {
    if (server.WaitForShutdown(0.25)) break;
    if (g_signal_shutdown != 0) {
      GORDER_LOG_INFO("gorderd: signal received, draining\n");
      break;
    }
    if (max_seconds > 0 && uptime.Seconds() >= max_seconds) {
      GORDER_LOG_INFO("gorderd: --max-seconds=%.1f elapsed, draining\n",
                      max_seconds);
      break;
    }
  }
  server.Stop();
  GORDER_LOG_INFO("gorderd: stopped\n");
  return 0;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) { return gorder::Run(argc, argv); }
