// gorderd — ordering-as-a-service daemon (DESIGN.md §16).
//
// Serves graph queries (neighbours, BFS/SP from a source, PageRank
// top-k, "order this uploaded edge list") over the length-prefixed
// binary protocol of serve/protocol.h, against a graph snapshot that is
// typically an mmap'd .gpack — zero-copy, shared read-only across all
// worker threads. A kSwapPack request republishes a new pack atomically
// while in-flight readers drain on the old epoch.
//
// Usage:
//   gorderd --listen=unix:/tmp/gorderd.sock --pack=graph.gpack
//   gorderd --listen=tcp:7077 --in=graph.txt [--serve-threads=4]
//           [--queue-capacity=128] [--max-connections=64]
//           [--no-swap] [--no-shutdown] [--max-seconds=N]
//           [--threads=N] [--quiet] [--json-out=f] [--trace-out=f]
//           [--failpoints=spec]
//
// `--listen=tcp:0` binds an ephemeral port. Once serving, the daemon
// prints exactly one line to stdout —
//
//   LISTENING <resolved address>
//
// — and flushes, so scripts can wait for readiness and learn the port
// without races. It then blocks until a client sends kShutdown (or
// --max-seconds elapses, for CI smoke jobs), drains, and exits 0.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/gorder_lib.h"
#include "util/failpoint.h"

namespace gorder {
namespace {

void ArmFailpointsFlag(const std::string& spec) {
  if (spec.empty()) return;
#if defined(GORDER_FAILPOINTS_ENABLED)
  std::string error;
  if (!util::ArmFailpointsFromSpec(spec, &error)) {
    std::fprintf(stderr, "--failpoints: %s\n", error.c_str());
    std::exit(2);
  }
#else
  std::fprintf(stderr,
               "--failpoints requires a -DGORDER_FAILPOINTS=ON build; "
               "this binary has fault injection compiled out\n");
  std::exit(2);
#endif
}

bool EndsWith(const std::string& s, const char* suffix) {
  std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  if (flags.GetBool("quiet", false)) SetLogLevel(LogLevel::kQuiet);
  ArmFailpointsFlag(flags.GetString("failpoints", ""));
  obs::RunOptions run;
  run.bench = "gorderd";
  run.flags = flags.Raw();
  run.json_out = flags.GetString("json-out", "");
  run.trace_out = flags.GetString("trace-out", "");
  obs::StartRun(run);

  serve::ServerOptions opts;
  const std::string listen = flags.GetString("listen", "");
  std::string parse_error;
  if (listen.empty() ||
      !util::ParseNetAddress(listen, &opts.listen, &parse_error)) {
    std::fprintf(stderr,
                 "usage: gorderd --listen=unix:/path|tcp:PORT "
                 "--pack=f.gpack|--in=<graph file>\n%s\n",
                 parse_error.c_str());
    return 2;
  }
  opts.serve_threads = static_cast<int>(flags.GetInt("serve-threads", 2));
  opts.queue_capacity = static_cast<int>(flags.GetInt("queue-capacity", 128));
  opts.max_connections = static_cast<int>(flags.GetInt("max-connections", 64));
  opts.allow_swap = !flags.GetBool("no-swap", false);
  opts.allow_shutdown = !flags.GetBool("no-shutdown", false);
  if (opts.serve_threads < 1 || opts.queue_capacity < 1 ||
      opts.max_connections < 1) {
    std::fprintf(stderr,
                 "error: --serve-threads, --queue-capacity and "
                 "--max-connections must be positive\n");
    return 2;
  }

  const std::string pack = flags.GetString("pack", "");
  const std::string in = pack.empty() ? flags.GetString("in", "") : pack;
  if (in.empty()) {
    std::fprintf(stderr, "error: gorderd needs --pack=<f.gpack> or --in\n");
    return 2;
  }
  Graph g;
  IoResult r = EndsWith(in, ".gpack") ? store::LoadPack(in, &g)
               : EndsWith(in, ".bin") ? ReadBinary(in, &g)
                                      : ReadEdgeList(in, &g);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  GORDER_LOG_INFO("gorderd: serving n=%u m=%llu from %s%s\n", g.NumNodes(),
                  static_cast<unsigned long long>(g.NumEdges()), in.c_str(),
                  g.IsMapped() ? " (zero-copy mmap)" : "");

  serve::Server server(std::move(g), opts);
  r = server.Start();
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  util::NetAddress bound = server.options().listen;
  if (!bound.is_unix && bound.port == 0) bound.port = server.Port();
  std::printf("LISTENING %s\n", bound.ToString().c_str());
  std::fflush(stdout);

  const double max_seconds = flags.GetDouble("max-seconds", 0.0);
  if (max_seconds > 0) {
    if (!server.WaitForShutdown(max_seconds)) {
      GORDER_LOG_INFO("gorderd: --max-seconds=%.1f elapsed, draining\n",
                      max_seconds);
    }
  } else {
    while (!server.WaitForShutdown(3600.0)) {
    }
  }
  server.Stop();
  GORDER_LOG_INFO("gorderd: stopped\n");
  return 0;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) { return gorder::Run(argc, argv); }
